// Project 2: parallel quicksort, once per runtime flavour —
//   quicksort_seq    — sequential reference
//   quicksort_ptask  — ParallelTask recursion (TaskGroup, cutoff)
//   quicksort_pj     — Pyjama nested sections to a depth limit
//   quicksort_threads — raw std::thread per recursion level (depth-limited),
//                       the "standard Java threads" strategy of the paper
// All sort in place and agree with std::sort on every input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ptask/runtime.hpp"

namespace parc::kernels {

void quicksort_seq(std::vector<std::int64_t>& data);

/// ParallelTask version: spawns a task for one partition while recursing on
/// the other; falls back to sequential below `cutoff` elements.
void quicksort_ptask(std::vector<std::int64_t>& data, ptask::Runtime& rt,
                     std::size_t cutoff = 8192);

/// Pyjama version: nested 2-thread sections down to `max_depth` levels, the
/// shape a directive-based fork/join gives.
void quicksort_pj(std::vector<std::int64_t>& data, std::size_t max_depth = 4,
                  std::size_t cutoff = 8192);

/// Raw-threads version: spawns a std::thread per right partition down to
/// `max_depth` levels (thread-per-task, the costliest strategy).
void quicksort_threads(std::vector<std::int64_t>& data,
                       std::size_t max_depth = 4, std::size_t cutoff = 8192);

/// Deterministic test vectors: uniform, sorted, reverse-sorted, few-uniques.
enum class InputKind { kUniform, kSorted, kReverse, kFewUniques, kConstant };
[[nodiscard]] std::vector<std::int64_t> make_sort_input(std::size_t n,
                                                        InputKind kind,
                                                        std::uint64_t seed);

}  // namespace parc::kernels
