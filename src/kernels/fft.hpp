// Radix-2 FFT kernel (project 3): sequential reference and a Pyjama-
// parallel version that workshares the butterfly groups of each stage.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "pj/schedule.hpp"

namespace parc::kernels {

using Complex = std::complex<double>;

/// In-place iterative Cooley–Tukey FFT; size must be a power of two.
void fft_seq(std::vector<Complex>& data, bool inverse = false);

/// Parallel FFT: each stage's independent butterfly groups are workshared
/// over a Pyjama team (one region per call; stages separated by the loop's
/// implicit barrier).
void fft_pj(std::vector<Complex>& data, std::size_t num_threads,
            bool inverse = false, pj::ForOptions opts = {});

/// Convenience round trip used by tests: forward then inverse.
[[nodiscard]] std::vector<Complex> fft_roundtrip(std::vector<Complex> data,
                                                 std::size_t num_threads);

/// Power spectrum magnitude (|X_k|) helper for the examples.
[[nodiscard]] std::vector<double> power_spectrum(
    const std::vector<Complex>& freq);

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace parc::kernels
