#include "kernels/fft.hpp"

#include <cmath>
#include <numbers>

#include "pj/parallel.hpp"
#include "support/check.hpp"

namespace parc::kernels {

namespace {

/// Bit-reversal permutation shared by both variants.
void bit_reverse(std::vector<Complex>& a) {
  const std::size_t n = a.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

/// One butterfly group: combines the pair block starting at `base` with
/// half-length `half` using twiddle stride derived from `len`.
inline void butterfly_group(std::vector<Complex>& a, std::size_t base,
                            std::size_t half, double angle_unit) {
  for (std::size_t k = 0; k < half; ++k) {
    const double angle = angle_unit * static_cast<double>(k);
    const Complex w(std::cos(angle), std::sin(angle));
    Complex& u = a[base + k];
    Complex& v = a[base + k + half];
    const Complex t = v * w;
    v = u - t;
    u = u + t;
  }
}

}  // namespace

void fft_seq(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  PARC_CHECK_MSG(is_power_of_two(n), "FFT size must be a power of two");
  bit_reverse(data);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const double angle_unit =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t base = 0; base < n; base += len) {
      butterfly_group(data, base, half, angle_unit);
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv;
  }
}

void fft_pj(std::vector<Complex>& data, std::size_t num_threads, bool inverse,
            pj::ForOptions opts) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  PARC_CHECK_MSG(is_power_of_two(n), "FFT size must be a power of two");
  bit_reverse(data);
  const double sign = inverse ? 1.0 : -1.0;
  pj::region(num_threads, [&](pj::Team& team) {
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t half = len >> 1;
      const double angle_unit =
          sign * 2.0 * std::numbers::pi / static_cast<double>(len);
      const auto groups = static_cast<std::int64_t>(n / len);
      // Groups within a stage touch disjoint blocks: embarrassingly
      // parallel. The loop's implicit barrier separates stages.
      pj::for_loop(
          team, 0, groups,
          [&](std::int64_t g) {
            butterfly_group(data, static_cast<std::size_t>(g) * len, half,
                            angle_unit);
          },
          opts);
    }
    if (inverse) {
      const double inv = 1.0 / static_cast<double>(n);
      pj::for_loop(team, 0, static_cast<std::int64_t>(n),
                   [&](std::int64_t i) {
                     data[static_cast<std::size_t>(i)] *= inv;
                   });
    }
  });
}

std::vector<Complex> fft_roundtrip(std::vector<Complex> data,
                                   std::size_t num_threads) {
  fft_pj(data, num_threads, /*inverse=*/false);
  fft_pj(data, num_threads, /*inverse=*/true);
  return data;
}

std::vector<double> power_spectrum(const std::vector<Complex>& freq) {
  std::vector<double> out;
  out.reserve(freq.size());
  for (const auto& c : freq) out.push_back(std::abs(c));
  return out;
}

}  // namespace parc::kernels
