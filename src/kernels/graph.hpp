// Graph-processing kernels (project 3): CSR storage, generators,
// level-synchronous BFS and power-iteration PageRank, each sequential and
// Pyjama-parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "pj/schedule.hpp"
#include "support/rng.hpp"

namespace parc::kernels {

/// Compressed-sparse-row directed graph.
class CsrGraph {
 public:
  using Vertex = std::uint32_t;

  /// Build from an edge list (duplicates kept, self-loops kept).
  CsrGraph(Vertex num_vertices,
           const std::vector<std::pair<Vertex, Vertex>>& edges);

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size();
  }

  [[nodiscard]] std::size_t out_degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of v as a [begin, end) span into the adjacency array.
  [[nodiscard]] const Vertex* neighbours_begin(Vertex v) const {
    return adjacency_.data() + offsets_[v];
  }
  [[nodiscard]] const Vertex* neighbours_end(Vertex v) const {
    return adjacency_.data() + offsets_[v + 1];
  }

 private:
  Vertex n_;
  std::vector<std::size_t> offsets_;   // n+1 entries
  std::vector<Vertex> adjacency_;
};

/// Erdős–Rényi-style random digraph with out-degrees ~ Poisson(avg_degree),
/// deterministic in `seed`.
[[nodiscard]] CsrGraph make_random_graph(std::uint32_t n, double avg_degree,
                                         std::uint64_t seed);

/// Scale-free-ish digraph: targets drawn Zipf-skewed so a few hubs exist
/// (exercises load imbalance — the reason dynamic schedules win here).
[[nodiscard]] CsrGraph make_skewed_graph(std::uint32_t n, double avg_degree,
                                         std::uint64_t seed);

/// BFS distances from `source` (unreachable = UINT32_MAX). Sequential.
[[nodiscard]] std::vector<std::uint32_t> bfs_seq(const CsrGraph& g,
                                                 std::uint32_t source);

/// Level-synchronous parallel BFS: each frontier is expanded by a
/// worksharing loop; next-frontier membership decided by atomic CAS on the
/// distance array.
[[nodiscard]] std::vector<std::uint32_t> bfs_pj(const CsrGraph& g,
                                                std::uint32_t source,
                                                std::size_t num_threads,
                                                pj::ForOptions opts = {});

/// PageRank by power iteration (damping d, `iters` rounds). Sequential.
[[nodiscard]] std::vector<double> pagerank_seq(const CsrGraph& g, int iters,
                                               double damping = 0.85);

/// Parallel PageRank: rank scatter per vertex row, workshared; dangling mass
/// accumulated with a reduction.
[[nodiscard]] std::vector<double> pagerank_pj(const CsrGraph& g, int iters,
                                              std::size_t num_threads,
                                              double damping = 0.85,
                                              pj::ForOptions opts = {});

}  // namespace parc::kernels
