#include "kernels/stencil.hpp"

#include <algorithm>
#include <cmath>

#include "pj/reductions.hpp"
#include "support/check.hpp"

namespace parc::kernels {

Grid2D make_heat_grid(std::size_t rows, std::size_t cols, double edge_temp) {
  PARC_CHECK(rows >= 3 && cols >= 3);
  Grid2D g(rows, cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) g.at(0, c) = edge_temp;
  return g;
}

double jacobi_seq(Grid2D& grid, int iters) {
  Grid2D next = grid;
  double residual = 0.0;
  for (int it = 0; it < iters; ++it) {
    residual = 0.0;
    for (std::size_t r = 1; r + 1 < grid.rows; ++r) {
      for (std::size_t c = 1; c + 1 < grid.cols; ++c) {
        const double v = 0.25 * (grid.at(r - 1, c) + grid.at(r + 1, c) +
                                 grid.at(r, c - 1) + grid.at(r, c + 1));
        residual = std::max(residual, std::abs(v - grid.at(r, c)));
        next.at(r, c) = v;
      }
    }
    std::swap(grid.cells, next.cells);
  }
  return residual;
}

double jacobi_pj(Grid2D& grid, int iters, std::size_t num_threads,
                 pj::ForOptions opts) {
  Grid2D next = grid;
  double residual = 0.0;
  for (int it = 0; it < iters; ++it) {
    residual = pj::reduce(
        num_threads, 1, static_cast<std::int64_t>(grid.rows) - 1,
        pj::MaxReducer<double>{},
        [&](std::int64_t rr, double& acc) {
          const auto r = static_cast<std::size_t>(rr);
          for (std::size_t c = 1; c + 1 < grid.cols; ++c) {
            const double v = 0.25 * (grid.at(r - 1, c) + grid.at(r + 1, c) +
                                     grid.at(r, c - 1) + grid.at(r, c + 1));
            acc = std::max(acc, std::abs(v - grid.at(r, c)));
            next.at(r, c) = v;
          }
        },
        opts);
    std::swap(grid.cells, next.cells);
  }
  return residual;
}

}  // namespace parc::kernels
