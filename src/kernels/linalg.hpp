// Dense and sparse linear-algebra kernels (project 3): GEMM (naive, blocked,
// parallel), LU with partial pivoting, triangular solves, CSR SpMV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pj/schedule.hpp"
#include "support/rng.hpp"

namespace parc::kernels {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

  /// Max-abs elementwise difference (test oracle comparisons).
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  [[nodiscard]] static Matrix random(std::size_t rows, std::size_t cols,
                                     std::uint64_t seed);
  [[nodiscard]] static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A·B, triple loop (reference oracle).
[[nodiscard]] Matrix gemm_seq(const Matrix& a, const Matrix& b);

/// Cache-blocked sequential GEMM.
[[nodiscard]] Matrix gemm_blocked(const Matrix& a, const Matrix& b,
                                  std::size_t block = 64);

/// Parallel GEMM: row blocks workshared over a Pyjama team.
[[nodiscard]] Matrix gemm_pj(const Matrix& a, const Matrix& b,
                             std::size_t num_threads,
                             pj::ForOptions opts = {});

/// Parallel GEMM over the collapsed (i, j) space (`collapse(2)`): finer
/// units than whole rows, which balances better when rows < threads or row
/// costs are uneven — the ablation bench compares both.
[[nodiscard]] Matrix gemm_pj_collapsed(const Matrix& a, const Matrix& b,
                                       std::size_t num_threads,
                                       pj::ForOptions opts = {});

/// LU decomposition with partial pivoting: returns L (unit diagonal) and U
/// packed into one matrix plus the row permutation. Aborts on singularity.
struct LuResult {
  Matrix lu;                       ///< L below diagonal, U on/above
  std::vector<std::size_t> perm;   ///< row permutation applied to A
  int sign = 1;                    ///< permutation parity (for determinants)
};
[[nodiscard]] LuResult lu_decompose_seq(Matrix a);

/// Parallel LU: the trailing-submatrix update of each elimination step is
/// workshared (the O(n³) part); pivot search stays on the master.
[[nodiscard]] LuResult lu_decompose_pj(Matrix a, std::size_t num_threads,
                                       pj::ForOptions opts = {});

/// Solve A x = b given an LU decomposition of A.
[[nodiscard]] std::vector<double> lu_solve(const LuResult& lu,
                                           const std::vector<double>& b);

/// Sparse CSR matrix (values + column indices + row offsets).
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_offsets;  // rows+1
  std::vector<std::size_t> col_index;
  std::vector<double> values;

  [[nodiscard]] static CsrMatrix random(std::size_t rows, std::size_t cols,
                                        double density, std::uint64_t seed);
};

/// y = A·x, sequential.
[[nodiscard]] std::vector<double> spmv_seq(const CsrMatrix& a,
                                           const std::vector<double>& x);

/// y = A·x with rows workshared (guided schedules shine on skewed rows).
[[nodiscard]] std::vector<double> spmv_pj(const CsrMatrix& a,
                                          const std::vector<double>& x,
                                          std::size_t num_threads,
                                          pj::ForOptions opts = {});

}  // namespace parc::kernels
