#include "kernels/graph.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "pj/parallel.hpp"
#include "pj/reductions.hpp"
#include "support/check.hpp"

namespace parc::kernels {

CsrGraph::CsrGraph(Vertex num_vertices,
                   const std::vector<std::pair<Vertex, Vertex>>& edges)
    : n_(num_vertices), offsets_(num_vertices + 1, 0) {
  for (const auto& [u, v] : edges) {
    PARC_CHECK(u < n_ && v < n_);
    ++offsets_[u + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.resize(edges.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    adjacency_[cursor[u]++] = v;
  }
}

CsrGraph make_random_graph(std::uint32_t n, double avg_degree,
                           std::uint64_t seed) {
  PARC_CHECK(n >= 1);
  Rng rng(seed);
  std::vector<std::pair<CsrGraph::Vertex, CsrGraph::Vertex>> edges;
  edges.reserve(static_cast<std::size_t>(static_cast<double>(n) * avg_degree));
  for (std::uint32_t u = 0; u < n; ++u) {
    // Poisson(avg) approximated by a geometric-free counting loop.
    const auto degree = static_cast<std::size_t>(rng.exponential(avg_degree));
    for (std::size_t k = 0; k < degree; ++k) {
      edges.emplace_back(u, static_cast<CsrGraph::Vertex>(rng.below(n)));
    }
  }
  return CsrGraph(n, edges);
}

CsrGraph make_skewed_graph(std::uint32_t n, double avg_degree,
                           std::uint64_t seed) {
  PARC_CHECK(n >= 1);
  Rng rng(seed);
  std::vector<std::pair<CsrGraph::Vertex, CsrGraph::Vertex>> edges;
  const auto total =
      static_cast<std::size_t>(static_cast<double>(n) * avg_degree);
  edges.reserve(total);
  for (std::size_t e = 0; e < total; ++e) {
    // Sources Zipf-skewed too: hub vertices have large out-degrees,
    // producing the frontier imbalance the benches study.
    const auto u = static_cast<CsrGraph::Vertex>(rng.zipf(n, 1.1));
    const auto v = static_cast<CsrGraph::Vertex>(rng.zipf(n, 1.1));
    edges.emplace_back(u, v);
  }
  return CsrGraph(n, edges);
}

std::vector<std::uint32_t> bfs_seq(const CsrGraph& g, std::uint32_t source) {
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  PARC_CHECK(source < g.num_vertices());
  std::vector<std::uint32_t> frontier{source};
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<std::uint32_t> next;
    for (auto u : frontier) {
      for (const auto* p = g.neighbours_begin(u); p != g.neighbours_end(u);
           ++p) {
        if (dist[*p] == kUnreached) {
          dist[*p] = level;
          next.push_back(*p);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

std::vector<std::uint32_t> bfs_pj(const CsrGraph& g, std::uint32_t source,
                                  std::size_t num_threads,
                                  pj::ForOptions opts) {
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  PARC_CHECK(source < g.num_vertices());
  std::vector<std::atomic<std::uint32_t>> dist(g.num_vertices());
  for (auto& d : dist) d.store(kUnreached, std::memory_order_relaxed);
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<std::uint32_t> frontier{source};
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    // Per-thread next-frontier fragments merged via VectorConcat reduction.
    auto next = pj::reduce(
        num_threads, 0, static_cast<std::int64_t>(frontier.size()),
        pj::VectorConcatReducer<std::uint32_t>{},
        [&](std::int64_t fi, std::vector<std::uint32_t>& local) {
          const auto u = frontier[static_cast<std::size_t>(fi)];
          for (const auto* p = g.neighbours_begin(u);
               p != g.neighbours_end(u); ++p) {
            std::uint32_t expected = kUnreached;
            if (dist[*p].compare_exchange_strong(expected, level,
                                                 std::memory_order_relaxed)) {
              local.push_back(*p);
            }
          }
        },
        opts);
    frontier = std::move(next);
  }

  std::vector<std::uint32_t> out(g.num_vertices());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> pagerank_seq(const CsrGraph& g, int iters,
                                 double damping) {
  const std::size_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (std::uint32_t u = 0; u < n; ++u) {
      const auto deg = g.out_degree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(deg);
      for (const auto* p = g.neighbours_begin(u); p != g.neighbours_end(u);
           ++p) {
        next[*p] += share;
      }
    }
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    for (std::size_t v = 0; v < n; ++v) {
      rank[v] = base + damping * next[v];
    }
  }
  return rank;
}

std::vector<double> pagerank_pj(const CsrGraph& g, int iters,
                                std::size_t num_threads, double damping,
                                pj::ForOptions opts) {
  const std::size_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  // Gather formulation (pull): vertex v sums over in-neighbours. CSR stores
  // out-edges, so build the transpose once; each next[v] is then private to
  // its iteration — no atomics needed.
  std::vector<std::pair<CsrGraph::Vertex, CsrGraph::Vertex>> reversed;
  reversed.reserve(g.num_edges());
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const auto* p = g.neighbours_begin(u); p != g.neighbours_end(u);
         ++p) {
      reversed.emplace_back(*p, u);
    }
  }
  const CsrGraph gt(g.num_vertices(), reversed);

  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iters; ++it) {
    // Dangling mass reduction.
    const double dangling = pj::reduce(
        num_threads, 0, static_cast<std::int64_t>(n),
        pj::SumReducer<double>{},
        [&](std::int64_t u, double& acc) {
          if (g.out_degree(static_cast<std::uint32_t>(u)) == 0) {
            acc += rank[static_cast<std::size_t>(u)];
          }
        },
        opts);
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    pj::parallel_for(
        num_threads, 0, static_cast<std::int64_t>(n),
        [&](std::int64_t vi) {
          const auto v = static_cast<std::uint32_t>(vi);
          double acc = 0.0;
          for (const auto* p = gt.neighbours_begin(v);
               p != gt.neighbours_end(v); ++p) {
            acc += rank[*p] / static_cast<double>(g.out_degree(*p));
          }
          next[static_cast<std::size_t>(vi)] = base + damping * acc;
        },
        opts);
    std::swap(rank, next);
  }
  return rank;
}

}  // namespace parc::kernels
