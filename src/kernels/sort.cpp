#include "kernels/sort.hpp"

#include <algorithm>
#include <thread>

#include "pj/parallel.hpp"
#include "ptask/spawn.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace parc::kernels {

namespace {

using Iter = std::vector<std::int64_t>::iterator;

/// Median-of-three Hoare partition; returns the split point.
Iter partition_range(Iter first, Iter last) {
  const auto n = last - first;
  auto mid = first + n / 2;
  // Median-of-three pivot selection defends against sorted inputs.
  if (*mid < *first) std::iter_swap(mid, first);
  if (*(last - 1) < *first) std::iter_swap(last - 1, first);
  if (*(last - 1) < *mid) std::iter_swap(last - 1, mid);
  const std::int64_t pivot = *mid;
  auto lo = first;
  auto hi = last - 1;
  for (;;) {
    while (*lo < pivot) ++lo;
    while (pivot < *hi) --hi;
    if (lo >= hi) return hi + 1;
    std::iter_swap(lo, hi);
    ++lo;
    --hi;
  }
}

void qsort_seq_range(Iter first, Iter last) {
  while (last - first > 32) {
    const Iter split = partition_range(first, last);
    // Recurse into the smaller side, loop on the larger (O(log n) stack).
    if (split - first < last - split) {
      qsort_seq_range(first, split);
      first = split;
    } else {
      qsort_seq_range(split, last);
      last = split;
    }
  }
  // Insertion sort for small ranges.
  for (Iter i = first + (first == last ? 0 : 1); i < last; ++i) {
    std::int64_t v = *i;
    Iter j = i;
    while (j > first && *(j - 1) > v) {
      *j = *(j - 1);
      --j;
    }
    *j = v;
  }
}

void qsort_ptask_range(Iter first, Iter last, ptask::Runtime& rt,
                       ptask::TaskGroup& group, std::size_t cutoff) {
  if (static_cast<std::size_t>(last - first) <= cutoff) {
    qsort_seq_range(first, last);
    return;
  }
  const Iter split = partition_range(first, last);
  group.run([first, split, &rt, &group, cutoff] {
    qsort_ptask_range(first, split, rt, group, cutoff);
  });
  qsort_ptask_range(split, last, rt, group, cutoff);
}

void qsort_pj_range(Iter first, Iter last, std::size_t depth,
                    std::size_t cutoff) {
  if (depth == 0 || static_cast<std::size_t>(last - first) <= cutoff) {
    qsort_seq_range(first, last);
    return;
  }
  const Iter split = partition_range(first, last);
  pj::region(2, [&](pj::Team& team) {
    team.sections({
        [&] { qsort_pj_range(first, split, depth - 1, cutoff); },
        [&] { qsort_pj_range(split, last, depth - 1, cutoff); },
    });
  });
}

void qsort_threads_range(Iter first, Iter last, std::size_t depth,
                         std::size_t cutoff) {
  if (depth == 0 || static_cast<std::size_t>(last - first) <= cutoff) {
    qsort_seq_range(first, last);
    return;
  }
  const Iter split = partition_range(first, last);
  std::thread left([first, split, depth, cutoff] {
    qsort_threads_range(first, split, depth - 1, cutoff);
  });
  qsort_threads_range(split, last, depth - 1, cutoff);
  left.join();
}

}  // namespace

void quicksort_seq(std::vector<std::int64_t>& data) {
  if (data.size() < 2) return;
  qsort_seq_range(data.begin(), data.end());
}

void quicksort_ptask(std::vector<std::int64_t>& data, ptask::Runtime& rt,
                     std::size_t cutoff) {
  if (data.size() < 2) return;
  PARC_CHECK(cutoff >= 1);
  ptask::TaskGroup group(rt);
  qsort_ptask_range(data.begin(), data.end(), rt, group, cutoff);
  group.wait();
}

void quicksort_pj(std::vector<std::int64_t>& data, std::size_t max_depth,
                  std::size_t cutoff) {
  if (data.size() < 2) return;
  qsort_pj_range(data.begin(), data.end(), max_depth, cutoff);
}

void quicksort_threads(std::vector<std::int64_t>& data, std::size_t max_depth,
                       std::size_t cutoff) {
  if (data.size() < 2) return;
  qsort_threads_range(data.begin(), data.end(), max_depth, cutoff);
}

std::vector<std::int64_t> make_sort_input(std::size_t n, InputKind kind,
                                          std::uint64_t seed) {
  std::vector<std::int64_t> out(n);
  Rng rng(seed);
  switch (kind) {
    case InputKind::kUniform:
      for (auto& v : out) v = static_cast<std::int64_t>(rng.bits() >> 1);
      break;
    case InputKind::kSorted:
      for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::int64_t>(i);
      break;
    case InputKind::kReverse:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::int64_t>(n - i);
      }
      break;
    case InputKind::kFewUniques:
      for (auto& v : out) v = static_cast<std::int64_t>(rng.below(16));
      break;
    case InputKind::kConstant:
      std::fill(out.begin(), out.end(), 42);
      break;
  }
  return out;
}

}  // namespace parc::kernels
