// Jacobi 2-D heat-diffusion stencil (project 3's "nested loops" shape).
#pragma once

#include <cstddef>
#include <vector>

#include "pj/schedule.hpp"

namespace parc::kernels {

/// Dense 2-D grid with fixed boundary values.
struct Grid2D {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> cells;

  Grid2D() = default;
  Grid2D(std::size_t r, std::size_t c, double fill = 0.0)
      : rows(r), cols(c), cells(r * c, fill) {}

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    return cells[r * cols + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    return cells[r * cols + c];
  }
};

/// Hot-top-edge initial condition used by tests and benches.
[[nodiscard]] Grid2D make_heat_grid(std::size_t rows, std::size_t cols,
                                    double edge_temp = 100.0);

/// `iters` Jacobi sweeps; returns the final max residual (L∞ change of the
/// last sweep). Sequential reference.
double jacobi_seq(Grid2D& grid, int iters);

/// Parallel Jacobi: interior rows workshared per sweep, residual reduced
/// with MaxReducer. Bit-identical to jacobi_seq for any schedule.
double jacobi_pj(Grid2D& grid, int iters, std::size_t num_threads,
                 pj::ForOptions opts = {});

}  // namespace parc::kernels
