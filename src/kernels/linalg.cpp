#include "kernels/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "pj/parallel.hpp"
#include "support/check.hpp"

namespace parc::kernels {

double Matrix::max_abs_diff(const Matrix& other) const {
  PARC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = rng.uniform(-1.0, 1.0);
    }
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix gemm_seq(const Matrix& a, const Matrix& b) {
  PARC_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {  // ikj: streaming-friendly
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix gemm_blocked(const Matrix& a, const Matrix& b, std::size_t block) {
  PARC_CHECK(a.cols() == b.rows());
  PARC_CHECK(block >= 1);
  Matrix c(a.rows(), b.cols());
  const std::size_t n = a.rows(), m = b.cols(), p = a.cols();
  for (std::size_t i0 = 0; i0 < n; i0 += block) {
    for (std::size_t k0 = 0; k0 < p; k0 += block) {
      for (std::size_t j0 = 0; j0 < m; j0 += block) {
        const std::size_t i1 = std::min(i0 + block, n);
        const std::size_t k1 = std::min(k0 + block, p);
        const std::size_t j1 = std::min(j0 + block, m);
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = a.at(i, k);
            for (std::size_t j = j0; j < j1; ++j) {
              c.at(i, j) += aik * b.at(k, j);
            }
          }
        }
      }
    }
  }
  return c;
}

Matrix gemm_pj(const Matrix& a, const Matrix& b, std::size_t num_threads,
               pj::ForOptions opts) {
  PARC_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  pj::parallel_for(
      num_threads, 0, static_cast<std::int64_t>(a.rows()),
      [&](std::int64_t ii) {
        const auto i = static_cast<std::size_t>(ii);
        for (std::size_t k = 0; k < a.cols(); ++k) {
          const double aik = a.at(i, k);
          for (std::size_t j = 0; j < b.cols(); ++j) {
            c.at(i, j) += aik * b.at(k, j);
          }
        }
      },
      opts);
  return c;
}

Matrix gemm_pj_collapsed(const Matrix& a, const Matrix& b,
                         std::size_t num_threads, pj::ForOptions opts) {
  PARC_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  pj::parallel_for_2d(
      num_threads, 0, static_cast<std::int64_t>(a.rows()), 0,
      static_cast<std::int64_t>(b.cols()),
      [&](std::int64_t ii, std::int64_t jj) {
        const auto i = static_cast<std::size_t>(ii);
        const auto j = static_cast<std::size_t>(jj);
        double acc = 0.0;
        for (std::size_t k = 0; k < a.cols(); ++k) {
          acc += a.at(i, k) * b.at(k, j);
        }
        c.at(i, j) = acc;
      },
      opts);
  return c;
}

namespace {

/// Shared pivoting step: returns pivot row index for column k.
std::size_t find_pivot(const Matrix& a, std::size_t k) {
  std::size_t pivot = k;
  double best = std::abs(a.at(k, k));
  for (std::size_t r = k + 1; r < a.rows(); ++r) {
    const double v = std::abs(a.at(r, k));
    if (v > best) {
      best = v;
      pivot = r;
    }
  }
  PARC_CHECK_MSG(best > 0.0, "LU: singular matrix");
  return pivot;
}

void swap_rows(Matrix& a, std::size_t r1, std::size_t r2) {
  if (r1 == r2) return;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    std::swap(a.at(r1, c), a.at(r2, c));
  }
}

}  // namespace

LuResult lu_decompose_seq(Matrix a) {
  PARC_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  LuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t pivot = find_pivot(a, k);
    if (pivot != k) {
      swap_rows(a, pivot, k);
      std::swap(out.perm[pivot], out.perm[k]);
      out.sign = -out.sign;
    }
    const double akk = a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) / akk;
      a.at(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(k, c);
      }
    }
  }
  out.lu = std::move(a);
  return out;
}

LuResult lu_decompose_pj(Matrix a, std::size_t num_threads,
                         pj::ForOptions opts) {
  PARC_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  LuResult out;
  out.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.perm[i] = i;

  pj::region(num_threads, [&](pj::Team& team) {
    for (std::size_t k = 0; k < n; ++k) {
      team.single([&] {
        const std::size_t pivot = find_pivot(a, k);
        if (pivot != k) {
          swap_rows(a, pivot, k);
          std::swap(out.perm[pivot], out.perm[k]);
          out.sign = -out.sign;
        }
      });
      // single's barrier published the pivoted row; workshare the trailing
      // update rows — each row is written by exactly one thread.
      const double akk = a.at(k, k);
      pj::for_loop(
          team, static_cast<std::int64_t>(k) + 1, static_cast<std::int64_t>(n),
          [&](std::int64_t rr) {
            const auto r = static_cast<std::size_t>(rr);
            const double factor = a.at(r, k) / akk;
            a.at(r, k) = factor;
            for (std::size_t c = k + 1; c < n; ++c) {
              a.at(r, c) -= factor * a.at(k, c);
            }
          },
          opts);
    }
  });
  out.lu = std::move(a);
  return out;
}

std::vector<double> lu_solve(const LuResult& lu, const std::vector<double>& b) {
  const std::size_t n = lu.lu.rows();
  PARC_CHECK(b.size() == n);
  // Forward substitution with permuted rhs (Ly = Pb, L unit lower).
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[lu.perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu.lu.at(i, j) * y[j];
    y[i] = acc;
  }
  // Backward substitution (Ux = y).
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu.lu.at(ii, j) * x[j];
    x[ii] = acc / lu.lu.at(ii, ii);
  }
  return x;
}

CsrMatrix CsrMatrix::random(std::size_t rows, std::size_t cols, double density,
                            std::uint64_t seed) {
  PARC_CHECK(density > 0.0 && density <= 1.0);
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_offsets.reserve(rows + 1);
  m.row_offsets.push_back(0);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto nnz = static_cast<std::size_t>(
        rng.exponential(density * static_cast<double>(cols)));
    // Sorted unique column picks for this row.
    std::vector<std::size_t> picks;
    picks.reserve(nnz);
    for (std::size_t k = 0; k < nnz; ++k) {
      picks.push_back(static_cast<std::size_t>(rng.below(cols)));
    }
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    for (auto c : picks) {
      m.col_index.push_back(c);
      m.values.push_back(rng.uniform(-1.0, 1.0));
    }
    m.row_offsets.push_back(m.col_index.size());
  }
  return m;
}

std::vector<double> spmv_seq(const CsrMatrix& a, const std::vector<double>& x) {
  PARC_CHECK(x.size() == a.cols);
  std::vector<double> y(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (std::size_t k = a.row_offsets[r]; k < a.row_offsets[r + 1]; ++k) {
      acc += a.values[k] * x[a.col_index[k]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> spmv_pj(const CsrMatrix& a, const std::vector<double>& x,
                            std::size_t num_threads, pj::ForOptions opts) {
  PARC_CHECK(x.size() == a.cols);
  std::vector<double> y(a.rows, 0.0);
  pj::parallel_for(
      num_threads, 0, static_cast<std::int64_t>(a.rows),
      [&](std::int64_t rr) {
        const auto r = static_cast<std::size_t>(rr);
        double acc = 0.0;
        for (std::size_t k = a.row_offsets[r]; k < a.row_offsets[r + 1]; ++k) {
          acc += a.values[k] * x[a.col_index[k]];
        }
        y[r] = acc;
      },
      opts);
  return y;
}

}  // namespace parc::kernels
