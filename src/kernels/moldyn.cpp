#include "kernels/moldyn.hpp"

#include <cmath>

#include "pj/reductions.hpp"
#include "support/check.hpp"

namespace parc::kernels {

MdSystem make_md_system(std::size_t n, std::uint64_t seed,
                        double temperature) {
  PARC_CHECK(n >= 2);
  MdSystem sys;
  sys.pos.resize(n);
  sys.vel.resize(n);
  sys.force.resize(n);
  Rng rng(seed);

  // Particles on a cubic lattice with small jitter: avoids the singular
  // overlaps a uniform-random placement would produce.
  const auto side = static_cast<std::size_t>(std::ceil(std::cbrt(
      static_cast<double>(n))));
  const double spacing = sys.box / static_cast<double>(side);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ix = i % side;
    const std::size_t iy = (i / side) % side;
    const std::size_t iz = i / (side * side);
    sys.pos[i] = {(static_cast<double>(ix) + 0.5) * spacing +
                      rng.uniform(-0.05, 0.05) * spacing,
                  (static_cast<double>(iy) + 0.5) * spacing +
                      rng.uniform(-0.05, 0.05) * spacing,
                  (static_cast<double>(iz) + 0.5) * spacing +
                      rng.uniform(-0.05, 0.05) * spacing};
  }

  const double sigma_v = std::sqrt(temperature);
  Vec3 net{};
  for (std::size_t i = 0; i < n; ++i) {
    sys.vel[i] = {rng.normal(0.0, sigma_v), rng.normal(0.0, sigma_v),
                  rng.normal(0.0, sigma_v)};
    net += sys.vel[i];
  }
  const Vec3 correction = net * (1.0 / static_cast<double>(n));
  for (auto& v : sys.vel) v -= correction;  // zero total momentum
  return sys;
}

namespace {

/// Pairwise LJ contribution of (i, j): adds to fi and returns the pair's
/// potential energy (0 beyond the cutoff).
inline double lj_pair(const MdSystem& sys, std::size_t i, std::size_t j,
                      Vec3& fi) {
  Vec3 d = sys.pos[i] - sys.pos[j];
  // minimum image
  auto mi = [&](double& c) {
    if (c > 0.5 * sys.box) c -= sys.box;
    if (c < -0.5 * sys.box) c += sys.box;
  };
  mi(d.x);
  mi(d.y);
  mi(d.z);
  const double r2 = d.norm2();
  const double rc2 = sys.cutoff * sys.cutoff;
  if (r2 >= rc2 || r2 == 0.0) return 0.0;
  const double inv_r2 = 1.0 / r2;
  const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
  const double inv_r12 = inv_r6 * inv_r6;
  // F = 24ε (2 (σ/r)^12 − (σ/r)^6) / r² · d, with σ = ε = 1.
  const double fmag = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
  fi += d * fmag;
  return 4.0 * (inv_r12 - inv_r6);
}

}  // namespace

double compute_forces_seq(MdSystem& sys) {
  const std::size_t n = sys.size();
  for (auto& f : sys.force) f = {};
  double pe = 0.0;
  // Full (i, j≠i) sweep: each particle accumulates its own force, energy
  // pairs counted once via i<j weighting below.
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 fi{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double e = lj_pair(sys, i, j, fi);
      if (j > i) pe += e;
    }
    sys.force[i] = fi;
  }
  return pe;
}

double compute_forces_pj(MdSystem& sys, std::size_t num_threads,
                         pj::ForOptions opts) {
  const std::size_t n = sys.size();
  for (auto& f : sys.force) f = {};
  // Row i owns force[i]: no write sharing; energy reduces over the team.
  return pj::reduce(
      num_threads, 0, static_cast<std::int64_t>(n), pj::SumReducer<double>{},
      [&](std::int64_t ii, double& acc) {
        const auto i = static_cast<std::size_t>(ii);
        Vec3 fi{};
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const double e = lj_pair(sys, i, j, fi);
          if (j > i) acc += e;
        }
        sys.force[i] = fi;
      },
      opts);
}

double kinetic_energy(const MdSystem& sys) {
  double ke = 0.0;
  for (const auto& v : sys.vel) ke += 0.5 * v.norm2();
  return ke;
}

double net_momentum(const MdSystem& sys) {
  Vec3 p{};
  for (const auto& v : sys.vel) p += v;
  return std::sqrt(p.norm2());
}

}  // namespace parc::kernels
