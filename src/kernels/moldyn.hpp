// Molecular-dynamics kernel (project 3): Lennard-Jones particles in a
// periodic cubic box, velocity-Verlet integration, O(n²) force evaluation —
// the classic teaching MD (a miniature of the SPEC/Nas MD kernels the C
// handouts gave students).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pj/schedule.hpp"
#include "support/rng.hpp"

namespace parc::kernels {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  [[nodiscard]] double norm2() const noexcept { return x * x + y * y + z * z; }
};

struct MdSystem {
  double box = 10.0;   ///< periodic box edge length
  double dt = 0.001;   ///< integration timestep
  double cutoff = 2.5; ///< LJ cutoff radius
  std::vector<Vec3> pos;
  std::vector<Vec3> vel;
  std::vector<Vec3> force;

  [[nodiscard]] std::size_t size() const noexcept { return pos.size(); }
};

/// Build an n-particle system on a jittered lattice with Maxwellian
/// velocities (zero net momentum), deterministic in `seed`.
[[nodiscard]] MdSystem make_md_system(std::size_t n, std::uint64_t seed,
                                      double temperature = 0.7);

/// O(n²) Lennard-Jones forces with minimum-image convention. Returns the
/// potential energy. Sequential reference.
double compute_forces_seq(MdSystem& sys);

/// Parallel force evaluation: particle rows workshared over a Pyjama team;
/// the potential energy is a SumReducer reduction.
double compute_forces_pj(MdSystem& sys, std::size_t num_threads,
                         pj::ForOptions opts = {});

/// One velocity-Verlet step using the provided force function. Returns the
/// potential energy at the new positions.
template <typename ForceFn>
double verlet_step(MdSystem& sys, ForceFn&& forces) {
  const double half_dt = 0.5 * sys.dt;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    sys.vel[i] += sys.force[i] * half_dt;
    sys.pos[i] += sys.vel[i] * sys.dt;
    // wrap into the periodic box
    auto wrap = [&](double& c) {
      while (c < 0.0) c += sys.box;
      while (c >= sys.box) c -= sys.box;
    };
    wrap(sys.pos[i].x);
    wrap(sys.pos[i].y);
    wrap(sys.pos[i].z);
  }
  const double pe = forces(sys);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    sys.vel[i] += sys.force[i] * half_dt;
  }
  return pe;
}

/// Kinetic energy ½ Σ v².
[[nodiscard]] double kinetic_energy(const MdSystem& sys);

/// Net momentum magnitude (conserved quantity; ~0 throughout a run).
[[nodiscard]] double net_momentum(const MdSystem& sys);

}  // namespace parc::kernels
