// Pool-aware task-graph primitives built on the completion core
// (completion.hpp): the pieces that know about WorkStealingPool and compose
// help_while with atomic parking.
//
//  - JoinLatch: count-up/count-down join point with first-error capture —
//    the one implementation behind ptask::TaskGroup, pj task accounting
//    (taskwait), and conc::TaskSafeLatch;
//  - Barrier: sense-reversing cyclic barrier whose arrivals either help the
//    pool or atomic::wait-park — never block a pooled worker on a cv — so a
//    team larger than the worker count still makes progress (pj::Barrier,
//    conc::TaskSafeBarrier);
//  - TaskLatch: the historical sched join latch, now a thin JoinLatch
//    wrapper (kept for source compatibility with pool-level callers).
//
// Waiter taxonomy (the contract every wait() below follows): a thread that
// is allowed to run pool jobs — a pool worker, or an external caller that
// opted into helping — uses pool.help_while(), because the job that would
// complete the join may be sitting in a queue only the waiter can drain.
// A thread that must NOT run pool jobs (a pj region team thread, the EDT)
// parks on the completion/count word via std::atomic::wait. Ordered-ticket
// waits (completion.hpp Sequencer) always park: helping could nest a later
// ticket's wait on the waiter's own stack and deadlock the sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <utility>

#include "sched/completion.hpp"
#include "sched/thread_pool.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace parc::sched {

/// Count-up/count-down join point with built-in first-error capture: the
/// shared core behind TaskGroup::wait, pj taskwait, and TaskSafeLatch.
/// Reusable: add/done cycles may repeat across waits. Reuse contract: once
/// the count reaches zero, only a thread that has observed the join
/// complete may add() again — true for every holder (TaskGroup reuse, pj
/// teams): a running task keeps the count above zero while it spawns, so
/// the count cannot leave zero concurrently with a waiter parking.
class JoinLatch {
 public:
  JoinLatch() = default;
  JoinLatch(const JoinLatch&) = delete;
  JoinLatch& operator=(const JoinLatch&) = delete;

  void add(std::size_t n = 1) noexcept {
    outstanding_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Retire one unit. Release-publishes the task's writes; wakes parked
  /// waiters when the count returns to zero.
  void done() noexcept { done_n(1); }

  /// Retire `n` units in one epoch RMW and at most one notify — the batch
  /// spelling for chunked fan-out (pj::taskloop runners retire every chunk
  /// they claimed with a single done_n at exit), amortising the RMW the way
  /// submit_bulk amortises worker wakeups. No-op when n == 0.
  ///
  /// Lifetime rule (same as Completion::complete): the fetch_sub is the
  /// last access to *this — the instant it lands, a waiter polling idle()
  /// may return and destroy the latch (pj's Team dies right after its
  /// region-end taskwait), so done_n() must not touch any member after it.
  /// notify_all only dereferences the futex/waiter-table address, never
  /// the object.
  void done_n(std::size_t n) noexcept {
    if (n == 0) return;
    if (outstanding_.fetch_sub(n, std::memory_order_acq_rel) == n) {
      outstanding_.notify_all();
    }
  }

  [[nodiscard]] bool idle() const noexcept {
    return outstanding_.load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// Record a failing task's exception (first one wins, lock-free).
  void capture_error(std::exception_ptr e) noexcept {
    error_.capture(std::move(e));
  }

  [[nodiscard]] std::exception_ptr take_error() noexcept {
    return error_.take();
  }

  [[nodiscard]] bool has_error() const noexcept { return error_.has_error(); }

  /// Wait until the count is zero. With a pool, the caller helps (runs
  /// pending jobs — required for any thread that may hold queued work alive,
  /// see the waiter taxonomy above); without one it spins briefly then parks
  /// on the count word itself. Parking on the count is safe under the reuse
  /// contract above: the count cannot leave zero while a waiter is between
  /// its load and its wait, so a stale-value park cannot sleep through the
  /// join (and any done() churn just wakes the waiter to re-check).
  void wait(WorkStealingPool* helper_pool, std::uint64_t trace_id = 0) {
    if (idle()) return;
    if (helper_pool != nullptr) {
      helper_pool->help_while([this] { return !idle(); });
      return;
    }
    for (std::size_t i = 0; i < detail::kWaiterSpins; ++i) {
      ExponentialBackoff::cpu_relax();
      if (idle()) return;
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterPark, trace_id, 0);
    }
    for (;;) {
      const std::size_t n = outstanding_.load(std::memory_order_acquire);
      if (n == 0) break;
      outstanding_.wait(n, std::memory_order_acquire);
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterWake, trace_id, 0);
    }
  }

 private:
  alignas(kCacheLineSize) std::atomic<std::size_t> outstanding_{0};
  FirstError error_;
};

/// Sense-reversing cyclic barrier. Arrivals never block a pooled worker on
/// a cv: with a `help_pool`, a waiting arrival runs pending jobs (so a team
/// of N scheduled onto W < N workers completes — the helped jobs include
/// the other arrivals); without one it spins then parks on the generation
/// word. Reusable across any number of cycles.
class Barrier {
 public:
  explicit Barrier(std::size_t parties, WorkStealingPool* help_pool = nullptr)
      : parties_(parties), help_pool_(help_pool) {
    PARC_CHECK(parties > 0);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

  void arrive_and_wait() {
    // Snapshot the generation BEFORE arriving: if the last arriver bumps it
    // between our fetch_add and our first wait, the comparison below sees
    // the change and we never sleep through our own release.
    const std::uint32_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // Last arriver: reset the count for the next cycle, then publish the
      // new generation. The relaxed reset cannot race next-cycle arrivals —
      // they only start arriving after acquiring the generation bump below.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      generation_.notify_all();
      return;
    }
    // A pooled arrival must help even when the barrier was not configured
    // with a pool: the remaining arrivals may be jobs queued behind us on
    // the very workers now waiting here (team size > worker count).
    WorkStealingPool* pool = help_pool_ != nullptr
                                 ? help_pool_
                                 : WorkStealingPool::current_pool();
    if (pool != nullptr) {
      pool->help_while([this, gen] {
        return generation_.load(std::memory_order_acquire) == gen;
      });
      return;
    }
    for (std::size_t i = 0; i < detail::kWaiterSpins; ++i) {
      ExponentialBackoff::cpu_relax();
      if (generation_.load(std::memory_order_acquire) != gen) return;
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterPark, 0, gen);
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      generation_.wait(gen, std::memory_order_acquire);
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterWake, 0, gen);
    }
  }

 private:
  const std::size_t parties_;
  WorkStealingPool* const help_pool_;
  alignas(kCacheLineSize) std::atomic<std::size_t> arrived_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> generation_{0};
};

/// A count-up/count-down completion latch that waits by helping the pool.
/// Used by runtimes to implement join points (taskgroup / parallel-for end).
/// Now a thin wrapper over JoinLatch; kept for source compatibility.
class TaskLatch {
 public:
  explicit TaskLatch(WorkStealingPool& pool) : pool_(pool) {}

  void add(std::size_t n = 1) noexcept { join_.add(n); }
  void done() noexcept { join_.done(); }
  [[nodiscard]] bool idle() const noexcept { return join_.idle(); }
  /// Blocks (cooperatively) until the count returns to zero.
  void wait() { join_.wait(&pool_); }

 private:
  WorkStealingPool& pool_;
  JoinLatch join_;
};

}  // namespace parc::sched
