// The lock-free completion core shared by every join path in the system.
//
// Before this existed, each runtime re-implemented "wait for completion"
// with its own mutex + condition_variable: ptask::TaskState guarded its
// continuation/dependent lists and wait() with one, pj's Barrier/Ordered
// blocked team threads on one, and run_multi/TaskGroup each kept a
// mutex-guarded first-error slot. This header is the single replacement:
//
//  - Completion: a one-shot completion event made of a Treiber-stack
//    continuation list with a sealed sentinel (push after completion fails,
//    the caller runs inline) and a single state word that packs the
//    completed bit with a parked-waiter count, so completing when nobody
//    waits is one RMW and no syscall;
//  - FirstError: first-exception capture via one atomic<exception_ptr*>
//    CAS — the winner's exception survives, losers delete theirs;
//  - DependencyCounter: atomic countdown for `dependsOn` edges, firing a
//    ready closure when the last dependence is satisfied;
//  - Sequencer: ticket-ordered hand-off (OpenMP `ordered`) on one atomic
//    ticket word with spin-then-park waiting.
//
// Waiter protocol. A waiter that may run pool work never parks here — it
// helps via WorkStealingPool::help_while (see task_graph.hpp for the
// composed pieces), because a helper parked on a completion word cannot be
// woken by new pool work and a bounded pool could deadlock. Threads that
// must not run pool work (the main thread, the EDT, region team threads)
// spin briefly and then park on the word with std::atomic::wait; the
// completing side publishes its result, then sets the bit and notifies.
//
// Lifetime rule (what makes stack-allocated Completions safe, e.g. in
// EventLoop::post_and_wait): complete() touches *this last via the
// state-word RMW; the subsequent notify does not dereference the object
// beyond the futex address. A waiter can only return after that RMW is
// visible, so the waiter owning the Completion's storage may destroy it as
// soon as wait() returns.
//
// Trace hooks: waiter-park/waiter-wake and continuation-run events are
// emitted through parc::obs (compiled out with PARC_TRACE=OFF), so a trace
// shows exactly where join time goes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <utility>

#include "obs/trace.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace parc::sched {

/// Intrusive node of a Completion's continuation list. Allocated by the
/// registering side, freed by whoever runs it (the completer, or the
/// registering side itself when the completion already fired).
class CompletionNode {
 public:
  virtual ~CompletionNode() = default;
  /// Invoked exactly once, after the completion fired. Must not throw: it
  /// runs on the completing thread, inside paths that are noexcept by
  /// contract (pool jobs, finish()).
  virtual void run() noexcept = 0;

  CompletionNode* next = nullptr;
  /// Nodes that *must* run on the completing thread before the completed
  /// bit is published — the dependence-countdown edges of the dependsOn
  /// machinery, whose "continuations ran before wait() returned" ordering
  /// other code relies on. Never deferred through the continuation hand-off
  /// below; user-facing handlers leave this false.
  bool inline_only = false;
};

namespace detail {

template <typename F>
class FnNode final : public CompletionNode {
 public:
  explicit FnNode(F fn) : fn_(std::move(fn)) {}
  void run() noexcept override { fn_(); }

 private:
  F fn_;
};

/// Spin budget before a waiter escalates from cpu_relax to parking. Short:
/// parking is the *intended* steady state for non-helper threads, spinning
/// only covers completions that are a few hundred cycles away.
inline constexpr std::size_t kWaiterSpins = 256;

/// Continuation hand-off hook (continuation stealing). This header is
/// deliberately pool-free — include- *and* link-level: parc_gui uses
/// Completion without linking parc_sched — so the scheduler attaches
/// itself through a function pointer instead of a direct call. Installed
/// by WorkStealingPool's constructor; the hook returns true when it took
/// ownership of the node (pushed it onto the calling worker's own deque
/// tail), false when the caller should run it inline (non-worker thread,
/// or no pool built yet).
using ContinuationHandOff = bool (*)(CompletionNode*, std::uint64_t) noexcept;
inline std::atomic<ContinuationHandOff> g_continuation_hand_off{nullptr};

/// How many continuations may nest inline on one thread's stack before
/// complete() starts deferring them through the hand-off. Small: depth 0
/// covers every ordinary completion (handlers run inline, exactly the seed
/// contract); the budget only engages when continuations chain completions
/// of their own, where unbounded inline recursion would grow the stack
/// linearly with chain depth.
inline constexpr std::size_t kContinuationDepthBudget = 8;

/// Current inline continuation nesting depth on this thread.
inline thread_local std::size_t t_continuation_depth = 0;

}  // namespace detail

/// Heap-allocate a continuation node from any callable.
template <typename F>
[[nodiscard]] CompletionNode* make_completion_node(F&& fn) {
  return new detail::FnNode<std::decay_t<F>>(std::forward<F>(fn));
}

/// Run one ready continuation node under the trampolining policy: inside
/// the per-thread depth budget (or for inline_only nodes) run it here, past
/// the budget hand it to the scheduler hook, which re-enters this function
/// from a fresh pool-job stack frame at depth 0. Frees the node after the
/// run; the hook takes ownership when it accepts.
inline void run_continuation_node(CompletionNode* node,
                                  std::uint64_t trace_id) noexcept {
  if (!node->inline_only &&
      detail::t_continuation_depth >= detail::kContinuationDepthBudget)
      [[unlikely]] {
    const auto hand_off =
        detail::g_continuation_hand_off.load(std::memory_order_acquire);
    if (hand_off != nullptr && hand_off(node, trace_id)) return;
  }
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kContinuationRun, trace_id, 0);
  }
  ++detail::t_continuation_depth;
  node->run();
  --detail::t_continuation_depth;
  delete node;
}

/// One-shot completion event: sealed continuation stack + parking word.
class Completion {
 public:
  Completion() = default;
  Completion(const Completion&) = delete;
  Completion& operator=(const Completion&) = delete;

  ~Completion() {
    // A never-completed completion (task dropped before its dependences
    // fired) still owns its registered-but-unrun nodes.
    CompletionNode* n = head_.load(std::memory_order_relaxed);
    while (n != nullptr && n != sealed()) {
      CompletionNode* next = n->next;
      delete n;
      n = next;
    }
  }

  [[nodiscard]] bool completed() const noexcept {
    return (state_.load(std::memory_order_acquire) & kCompletedBit) != 0;
  }

  /// Register `node` to run on completion. Returns false — without taking
  /// ownership — when the completion already fired; the caller then runs
  /// (or frees) the node itself.
  [[nodiscard]] bool try_push(CompletionNode* node) noexcept {
    CompletionNode* head = head_.load(std::memory_order_acquire);
    do {
      if (head == sealed()) return false;
      node->next = head;
    } while (!head_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_acquire));
    return true;
  }

  /// Convenience: run `fn` after completion — inline on this thread when
  /// the completion has already fired (matching the seed TaskState
  /// contract), on the completing thread otherwise.
  template <typename F>
  void add_continuation(F&& fn) {
    CompletionNode* node = make_completion_node(std::forward<F>(fn));
    if (!try_push(node)) {
      node->run();
      delete node;
    }
  }

  /// Fire the completion: seal the list, run continuations in registration
  /// order (each under the run_continuation_node trampolining policy — deep
  /// chains hop through the completing worker's deque instead of growing
  /// the stack), then publish the completed bit and wake parked waiters. The
  /// caller must have published its payload (result/error/status) *before*
  /// calling complete() — the state-word RMW is the release point waiters
  /// acquire through. `trace_id` labels the continuation-run trace events
  /// (0 = untraced owner).
  void complete(std::uint64_t trace_id = 0) noexcept {
    // Seal first: any try_push from here on fails and runs inline, so no
    // continuation can be stranded on the stack.
    CompletionNode* list = head_.exchange(sealed(), std::memory_order_acq_rel);
    // Reverse to registration (FIFO) order, as the seed's vector ran them.
    CompletionNode* ordered = nullptr;
    while (list != nullptr) {
      CompletionNode* next = list->next;
      list->next = ordered;
      ordered = list;
      list = next;
    }
    while (ordered != nullptr) {
      CompletionNode* next = ordered->next;
      run_continuation_node(ordered, trace_id);
      ordered = next;
    }
    // Publish + wake. This RMW is the last access to *this: a waiter that
    // observes the bit may destroy the Completion, and notify_all only
    // touches the global waiter table / futex address, never the object.
    const std::uint32_t prev =
        state_.fetch_or(kCompletedBit, std::memory_order_acq_rel);
    if ((prev >> kWaiterShift) != 0) state_.notify_all();
  }

  /// Park until complete() has fired. For threads that must not run pool
  /// work; helpers compose help_while with completed() instead (see
  /// task_graph.hpp). `trace_id` labels the park/wake trace events.
  void wait(std::uint64_t trace_id = 0) noexcept {
    if (completed()) return;
    for (std::size_t i = 0; i < detail::kWaiterSpins; ++i) {
      ExponentialBackoff::cpu_relax();
      if (completed()) return;
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterPark, trace_id, 0);
    }
    state_.fetch_add(std::uint32_t{1} << kWaiterShift,
                     std::memory_order_seq_cst);
    for (;;) {
      const std::uint32_t s = state_.load(std::memory_order_acquire);
      if ((s & kCompletedBit) != 0) break;
      state_.wait(s, std::memory_order_acquire);
    }
    state_.fetch_sub(std::uint32_t{1} << kWaiterShift,
                     std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterWake, trace_id, 0);
    }
  }

 private:
  static constexpr std::uint32_t kCompletedBit = 1;
  static constexpr std::uint32_t kWaiterShift = 1;

  /// Sealed sentinel: `this` can never be a valid node address of its own
  /// list, and needs no storage.
  [[nodiscard]] CompletionNode* sealed() const noexcept {
    return reinterpret_cast<CompletionNode*>(
        const_cast<Completion*>(this));
  }

  std::atomic<CompletionNode*> head_{nullptr};
  /// bit 0: completed; bits 1..: count of parked waiters. Packing both in
  /// one word makes the no-waiter complete() a single RMW, syscall-free.
  std::atomic<std::uint32_t> state_{0};
};

/// First-exception capture: one CAS on an atomic pointer replaces the three
/// mutex-guarded `first_error_` slots the runtimes used to carry.
class FirstError {
 public:
  FirstError() = default;
  FirstError(const FirstError&) = delete;
  FirstError& operator=(const FirstError&) = delete;

  ~FirstError() { delete slot_.load(std::memory_order_acquire); }

  /// Record `e` if no error has been recorded yet. Lock-free; safe from
  /// any number of concurrent failing tasks.
  void capture(std::exception_ptr e) noexcept {
    if (e == nullptr) return;
    if (slot_.load(std::memory_order_acquire) != nullptr) return;
    auto* mine = new std::exception_ptr(std::move(e));
    std::exception_ptr* expected = nullptr;
    if (!slot_.compare_exchange_strong(expected, mine,
                                       std::memory_order_release,
                                       std::memory_order_acquire)) {
      delete mine;  // lost the race: the first error wins
    }
  }

  [[nodiscard]] bool has_error() const noexcept {
    return slot_.load(std::memory_order_acquire) != nullptr;
  }

  /// Remove and return the captured error (nullptr if none). Callers
  /// sequence take() after the join completes, so concurrent captures
  /// cannot land after it — but a concurrent take() from another waiter is
  /// fine: exactly one gets the exception, the rest get nullptr.
  [[nodiscard]] std::exception_ptr take() noexcept {
    std::exception_ptr* p = slot_.exchange(nullptr, std::memory_order_acq_rel);
    if (p == nullptr) return nullptr;
    std::exception_ptr e = std::move(*p);
    delete p;
    return e;
  }

 private:
  std::atomic<std::exception_ptr*> slot_{nullptr};
};

/// Atomic dependence countdown: `on_ready` fires exactly once, on the
/// thread that satisfies the final dependence (or inline from init when the
/// count is zero). Callers use the +1 registration-hold idiom: init with
/// deps + 1, register against each dependence, then satisfy the hold — the
/// closure cannot fire mid-registration.
class DependencyCounter {
 public:
  DependencyCounter() = default;
  DependencyCounter(const DependencyCounter&) = delete;
  DependencyCounter& operator=(const DependencyCounter&) = delete;

  void init(std::size_t count, std::function<void()> on_ready) {
    PARC_CHECK(on_ready != nullptr);
    on_ready_ = std::move(on_ready);
    remaining_.store(count, std::memory_order_release);
    if (count == 0) fire();
  }

  void satisfy() {
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) fire();
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return remaining_.load(std::memory_order_acquire);
  }

 private:
  void fire() {
    // Moving out prevents a double fire and drops the closure's captures.
    std::function<void()> ready;
    ready.swap(on_ready_);
    PARC_CHECK_MSG(ready != nullptr, "dependence countdown fired twice");
    ready();
  }

  std::atomic<std::size_t> remaining_{0};
  std::function<void()> on_ready_;
};

/// Ticket-ordered hand-off: OpenMP `ordered` semantics on one atomic word.
/// Ticket i's holder runs only after advance() has been called i - first
/// times. Waiters spin briefly then park; advance() is one RMW + notify.
///
/// Waiting never helps the pool: a helper stuck under a nested job that
/// waits for a *later* ticket could never resume to release its own, so
/// ordered waits park unconditionally (ticket holders are team threads).
class Sequencer {
 public:
  explicit Sequencer(std::int64_t first) : next_(first) {}
  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  /// Block until it is `ticket`'s turn.
  void wait_for(std::int64_t ticket, std::uint64_t trace_id = 0) noexcept {
    if (next_.load(std::memory_order_acquire) == ticket) return;
    for (std::size_t i = 0; i < detail::kWaiterSpins; ++i) {
      ExponentialBackoff::cpu_relax();
      if (next_.load(std::memory_order_acquire) == ticket) return;
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterPark, trace_id,
                static_cast<std::uint64_t>(ticket));
    }
    for (;;) {
      const std::int64_t cur = next_.load(std::memory_order_acquire);
      if (cur == ticket) break;
      next_.wait(cur, std::memory_order_acquire);
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kWaiterWake, trace_id,
                static_cast<std::uint64_t>(ticket));
    }
  }

  /// Release the next ticket. The release RMW publishes everything the
  /// finishing ticket holder wrote.
  void advance() noexcept {
    next_.fetch_add(1, std::memory_order_release);
    next_.notify_all();
  }

  [[nodiscard]] std::int64_t current() const noexcept {
    return next_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> next_;
};

}  // namespace parc::sched
