// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), with the C11
// memory orderings from Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013).
//
// Single owner pushes/pops at the bottom; any number of thieves steal from
// the top. Stores raw pointers; ownership of a popped/stolen element returns
// to the caller. Grows by allocating a larger ring and retiring the old one
// to a garbage list that is freed only on destruction — the classic safe
// reclamation shortcut, bounded because capacity only doubles.
//
// This is the one deliberately lock-free component in the repository
// (CP.100 notwithstanding): a work-stealing scheduler's deque is the
// canonical "absolutely have to" case, and this implementation follows the
// published algorithm verbatim rather than inventing anything.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/backoff.hpp"
#include "support/check.hpp"

// ThreadSanitizer does not model standalone std::atomic_thread_fence, so the
// published fence-based orderings produce false positives under TSan. When
// compiling instrumented, strengthen the per-atomic orderings to carry the
// same happens-before edges directly (slower, but only in sanitizer builds).
#if defined(__SANITIZE_THREAD__)
#define PARC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARC_TSAN 1
#endif
#endif
#ifndef PARC_TSAN
#define PARC_TSAN 0
#endif

namespace parc::sched {

namespace detail {
inline constexpr bool kTsanBuild = PARC_TSAN != 0;
}  // namespace detail

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0), buffer_(new Ring(round_up(initial_capacity))) {}

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Pushes one element at the bottom.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(ring->capacity) - 1) {
      ring = grow(ring, t, b);
    }
    ring->put(b, item);
    if constexpr (detail::kTsanBuild) {
      bottom_.store(b + 1, std::memory_order_release);
    } else {
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
  }

  /// Owner only. Pops the most recently pushed element; nullptr if empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    std::int64_t t;
    if constexpr (detail::kTsanBuild) {
      bottom_.store(b, std::memory_order_seq_cst);
      t = top_.load(std::memory_order_seq_cst);
    } else {
      bottom_.store(b, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      t = top_.load(std::memory_order_relaxed);
    }
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = ring->get(b);
    if (t == b) {
      // Last element: race with thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. Steals the oldest element; nullptr if empty or lost a race.
  T* steal() {
    // Relaxed pre-check: the sharded pool's hierarchical victim sweeps
    // probe many (mostly empty) foreign deques per pass, and the full
    // protocol below pays a seq_cst fence even to learn "empty". A
    // spurious nullptr is already part of steal()'s contract (lost races
    // return it too), and the park protocol cannot lose the job: any push
    // whose signal_work epoch bump is visible at park-snapshot time
    // happens-before the re-scan, so these relaxed loads see it.
    if (empty_approx()) return nullptr;
    std::int64_t t;
    std::int64_t b;
    if constexpr (detail::kTsanBuild) {
      t = top_.load(std::memory_order_seq_cst);
      b = bottom_.load(std::memory_order_seq_cst);
    } else {
      t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      b = bottom_.load(std::memory_order_acquire);
    }
    if (t >= b) return nullptr;
    Ring* ring = buffer_.load(std::memory_order_consume);
    T* item = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race; caller retries elsewhere
    }
    return item;
  }

  /// Approximate size (racy; for heuristics/stats only).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::vector<std::atomic<T*>> slots;

    T* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 8 ? 8 : p;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  // top_ is hammered by thieves, bottom_ by the owner: separate lines, and
  // buffer_/retired_ (owner-mostly) keep off both.
  alignas(kCacheLineSize) std::atomic<std::int64_t> top_;
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_;
  alignas(kCacheLineSize) std::atomic<Ring*> buffer_;
  std::vector<Ring*> retired_;  // owner-only; freed in destructor
};

}  // namespace parc::sched
