// Intrusive multi-producer single-consumer queue (Dmitry Vyukov's
// non-intrusive MPSC algorithm, adapted to link through the node itself).
//
// Producers push with one atomic exchange + one store — wait-free, no CAS
// loop, no lock — which is what lets external threads (the GUI event thread,
// the main thread) inject work into the pool without ever contending a
// mutex. The consumer side is single-threaded by contract; the pool
// serialises poppers with a try-lock so that a busy consumer makes others
// skip to stealing instead of blocking (see WorkStealingPool::pop_injected).
// The sharded pool instantiates one of these per locality domain (plus one
// exclusive queue per domain), so producers in different domains never touch
// the same head word — the queue itself needs no sharding awareness.
//
// Progress caveat inherited from the algorithm: a fully-linked element can
// be momentarily unpoppable while *another* producer sits between its
// exchange and its link store. try_pop() then returns nullptr as if empty.
// This cannot lose work: that producer has not signalled yet, and its
// signal_work() after the link completes re-wakes any consumer that parked
// in the window.
#pragma once

#include <atomic>
#include <cstddef>

#include "support/backoff.hpp"

namespace parc::sched {

/// T must expose `std::atomic<T*> next` and be default-constructible (for
/// the embedded stub node).
template <typename T>
class MpscIntrusiveQueue {
 public:
  MpscIntrusiveQueue() : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  MpscIntrusiveQueue(const MpscIntrusiveQueue&) = delete;
  MpscIntrusiveQueue& operator=(const MpscIntrusiveQueue&) = delete;

  /// Any thread. Wait-free: one exchange, one store.
  void push(T* node) noexcept {
    link_back(node);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer only (callers must serialise). Returns nullptr when empty or
  /// when the front element's producer has not finished linking yet.
  T* try_pop() noexcept {
    T* tail = tail_;
    T* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or push in flight)
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      count_.fetch_sub(1, std::memory_order_relaxed);
      return tail;
    }
    // `tail` looks like the last element. If head agrees, re-insert the stub
    // behind it so the list is never left empty, then detach `tail`.
    if (tail != head_.load(std::memory_order_acquire)) {
      return nullptr;  // a producer is mid-push; it will signal when linked
    }
    stub_.next.store(nullptr, std::memory_order_relaxed);
    link_back(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      count_.fetch_sub(1, std::memory_order_relaxed);
      return tail;
    }
    return nullptr;  // raced with a concurrent push; retry later
  }

  /// Racy element count (park heuristics and stats only). May transiently
  /// over- or under-report around concurrent push/pop.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::ptrdiff_t n = count_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept {
    return count_.load(std::memory_order_relaxed) <= 0;
  }

 private:
  void link_back(T* node) noexcept {
    node->next.store(nullptr, std::memory_order_relaxed);
    T* prev = head_.exchange(node, std::memory_order_acq_rel);
    // The window between these two lines is the in-flight state documented
    // above; release pairs with the consumer's acquire load of `next`.
    prev->next.store(node, std::memory_order_release);
  }

  alignas(kCacheLineSize) std::atomic<T*> head_;  // producers (back of queue)
  alignas(kCacheLineSize) T* tail_;               // consumer (front of queue)
  alignas(kCacheLineSize) std::atomic<std::ptrdiff_t> count_{0};
  T stub_;
};

}  // namespace parc::sched
