#include "sched/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/counters.hpp"
#include "sched/completion.hpp"
#include "support/check.hpp"

namespace parc::sched {

namespace {
// Identity of the calling thread within a pool. Plain thread_locals: a
// thread belongs to at most one pool for its lifetime.
thread_local WorkStealingPool* t_pool = nullptr;
thread_local int t_worker = -1;
// pj-places pinning hook: the locality domain this thread's unnamed
// injections route to (kAnyShard = unbound). Process-wide, taken modulo
// each pool's shard count at use.
thread_local std::size_t t_shard_pref = WorkStealingPool::kAnyShard;

// Cells handed to each worker per slab allocation. Slabs are allocated only
// when a worker's freelist and the shared return stack are both empty, so
// steady-state submission never touches the allocator.
constexpr std::size_t kSlabCells = 64;
// Above this, a worker's freelist spills back to the shared return stack so
// a pure-producer / pure-consumer pair cannot strand unbounded cells.
constexpr std::size_t kMaxLocalFree = 512;

// Continuation hand-off hook for the completion core (completion.hpp is
// deliberately pool-free, so the link runs through a function pointer
// installed at pool construction). Called by Completion::complete when a
// continuation cascade on this thread exceeds its inline depth budget:
// package the node as a pool job on the completing worker's own deque
// (SubmitHint::local — the node's inputs are hot right here). Declining
// (non-worker thread, or a worker of a *different* pool than the one whose
// job is completing is still fine — its own deque is equally warm) makes
// the caller run the node inline.
bool hand_off_continuation(CompletionNode* node,
                           std::uint64_t trace_id) noexcept {
  if (t_pool == nullptr || t_worker < 0) return false;
  // 16-byte capture: stays inside the TaskCell inline buffer.
  t_pool->submit(
      [node, trace_id]() noexcept { run_continuation_node(node, trace_id); },
      SubmitHint::local);
  return true;
}

// Stable per-thread default shard for unbound external submitters: keeping
// one thread's stream in one domain preserves FIFO-ish ordering and
// locality; thieves rebalance if it skews. Computed once per thread.
std::size_t thread_hash() noexcept {
  thread_local const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h;
}
}  // namespace

std::size_t default_concurrency() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(hc == 0 ? 1 : hc, 2);
}

WorkStealingPool* WorkStealingPool::current_pool() noexcept { return t_pool; }
int WorkStealingPool::current_worker() noexcept { return t_worker; }

void WorkStealingPool::bind_thread_to_shard(std::size_t shard) noexcept {
  t_shard_pref = shard;
}

std::size_t WorkStealingPool::thread_bound_shard() noexcept {
  return t_shard_pref;
}

std::size_t WorkStealingPool::current_shard() const noexcept {
  if (t_pool == this && t_worker >= 0) {
    return workers_[static_cast<std::size_t>(t_worker)]->shard;
  }
  if (t_shard_pref != kAnyShard) return t_shard_pref % shards_.size();
  return kAnyShard;
}

std::size_t WorkStealingPool::resolve_shard(std::size_t requested) const {
  const std::size_t n = shards_.size();
  if (n == 1) return 0;
  // Explicit ids wrap modulo the shard count so callers can name places
  // (pj) without consulting this pool's clamped configuration.
  if (requested != kAnyShard) return requested % n;
  if (t_pool == this && t_worker >= 0) {
    return workers_[static_cast<std::size_t>(t_worker)]->shard;
  }
  if (t_shard_pref != kAnyShard) return t_shard_pref % n;
  return thread_hash() % n;
}

WorkStealingPool::WorkStealingPool(Config cfg) : cfg_(std::move(cfg)) {
  PARC_CHECK(cfg_.num_threads >= 1);
  PARC_CHECK(cfg_.local_queue_soft_cap >= 1);
  // Shard auto-sizing: one locality domain per ~4 workers mirrors the
  // core-complex granularity of the paper's lab machines. Clamp so no
  // domain is empty.
  if (cfg_.shards == 0) {
    cfg_.shards = std::max<std::size_t>(cfg_.num_threads / 4, 1);
  }
  cfg_.shards = std::min(cfg_.shards, cfg_.num_threads);
  // First pool up installs the completion core's hand-off hook (idempotent:
  // the hook re-resolves the calling thread's pool on every call, so it is
  // pool-agnostic and never uninstalled — see hand_off_continuation).
  detail::g_continuation_hand_off.store(&hand_off_continuation,
                                        std::memory_order_release);
  workers_.reserve(cfg_.num_threads);
  for (std::size_t i = 0; i < cfg_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(0x5157c0de + i));
  }
  // Contiguous worker blocks per shard: shard s owns [s*W/S, (s+1)*W/S).
  shards_.reserve(cfg_.shards);
  worker_shard_.resize(cfg_.num_threads);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->first_worker = s * cfg_.num_threads / cfg_.shards;
    shard->num_workers =
        (s + 1) * cfg_.num_threads / cfg_.shards - shard->first_worker;
    for (std::size_t w = shard->first_worker;
         w < shard->first_worker + shard->num_workers; ++w) {
      worker_shard_[w] = static_cast<std::uint32_t>(s);
      workers_[w]->shard = static_cast<std::uint32_t>(s);
    }
    shards_.push_back(std::move(shard));
  }
  threads_.reserve(cfg_.num_threads);
  for (std::size_t i = 0; i < cfg_.num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::scoped_lock lock(shard->park_mutex);
    shard->park_cv.notify_all();
  }
  for (auto& t : threads_) t.join();
  // Drain anything submitted after the workers left. Running (rather than
  // discarding) keeps the contract that every submitted job eventually
  // executes, so external waiters cannot hang on destruction. Exclusive
  // jobs get the same treatment: with the workers gone there is no frame
  // below this one that could be waiting on them.
  while (try_run_one()) {
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (TaskCell* cell = pop_exclusive(s)) {
      run_cell(cell);
    }
  }
  // Cells are owned by slabs_ (freed with the vector) or were individually
  // heap-allocated and deleted after their run; nothing else to reclaim.
  const Stats s = stats();
  auto& counters = obs::Counters::global();
  counters.add("sched.pool.executed", s.executed);
  counters.add("sched.pool.stolen", s.stolen);
  counters.add("sched.pool.parked", s.parked);
  counters.add("sched.pool.helped", s.helped);
  counters.add("sched.pool.steal_fails", s.steal_fails);
  counters.add("sched.pool.cont_local_pushed", s.continuation_local_pushed);
  counters.add("sched.pool.cont_inject_fallback",
               s.continuation_inject_fallback);
  counters.add("sched.pool.deque_overflows", s.deque_overflows);
  counters.add("sched.pool.exclusive_submitted", s.exclusive_submitted);
  counters.add("sched.pool.reservations_granted", s.reservations_granted);
  counters.add("sched.pool.reservations_denied", s.reservations_denied);
  counters.add("sched.pool.stolen_shard_local", s.stolen_shard_local);
  counters.add("sched.pool.stolen_cross_shard", s.stolen_cross_shard);
  counters.add("sched.pool.cross_shard_probes", s.cross_shard_probes);
  counters.add("sched.pool.cross_shard_wakes", s.cross_shard_wakes);
}

bool WorkStealingPool::try_reserve_capacity(std::size_t n) noexcept {
  std::size_t cur = reserved_.load(std::memory_order_relaxed);
  do {
    if (cur + n > workers_.size()) {
      reserve_denied_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } while (!reserved_.compare_exchange_weak(cur, cur + n,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  reserve_granted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void WorkStealingPool::release_capacity(std::size_t n) noexcept {
  PARC_DCHECK(reserved_.load(std::memory_order_relaxed) >= n);
  reserved_.fetch_sub(n, std::memory_order_release);
}

// --------------------------------------------------------------------------
// Cell recycling.
// --------------------------------------------------------------------------

TaskCell* WorkStealingPool::acquire_cell() {
  if (t_pool == this && t_worker >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(t_worker)];
    if (w.free_head == nullptr) refill_freelist(w);
    TaskCell* cell = w.free_head;
    w.free_head = cell->next.load(std::memory_order_relaxed);
    --w.free_count;
    return cell;
  }
  // External submitters have no freelist; one allocation, freed after the
  // run. Still an improvement over the seed (which also took a mutex).
  return new TaskCell;  // slab_owned stays false
}

void WorkStealingPool::refill_freelist(Worker& w) {
  PARC_DCHECK(w.free_head == nullptr);
  // First drain the shared return stack: cells recycled by thieves and
  // external helpers come back here. Taking the whole list at once makes
  // the pop ABA-free (no interior CAS).
  if (TaskCell* list = arena_free_.exchange(nullptr, std::memory_order_acquire)) {
    std::size_t n = 0;
    for (TaskCell* c = list; c != nullptr;
         c = c->next.load(std::memory_order_relaxed)) {
      ++n;
    }
    w.free_head = list;
    w.free_count = n;
    return;
  }
  std::scoped_lock lock(arena_mutex_);
  auto slab = std::make_unique<TaskCell[]>(kSlabCells);
  for (std::size_t i = 0; i < kSlabCells; ++i) {
    slab[i].slab_owned = true;
    slab[i].next.store(i + 1 < kSlabCells ? &slab[i + 1] : nullptr,
                       std::memory_order_relaxed);
  }
  w.free_head = &slab[0];
  w.free_count = kSlabCells;
  slabs_.push_back(std::move(slab));
}

void WorkStealingPool::release_cell(TaskCell* cell) {
  if (!cell->slab_owned) {
    delete cell;
    return;
  }
  if (t_pool == this && t_worker >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(t_worker)];
    if (w.free_count < kMaxLocalFree) {
      cell->next.store(w.free_head, std::memory_order_relaxed);
      w.free_head = cell;
      ++w.free_count;
      return;
    }
  }
  // Thief overflow or external helper: lock-free push onto the shared
  // return stack (push-only CAS + wholesale exchange on pop = no ABA).
  TaskCell* old = arena_free_.load(std::memory_order_relaxed);
  do {
    cell->next.store(old, std::memory_order_relaxed);
  } while (!arena_free_.compare_exchange_weak(
      old, cell, std::memory_order_release, std::memory_order_relaxed));
}

std::size_t WorkStealingPool::enqueue_cell(TaskCell* cell, SubmitHint hint,
                                           std::size_t shard) {
  // Worker-local fast path: own deque, unless the caller explicitly named
  // a shard (explicit routing always means "that domain's injection queue")
  // or hinted remote.
  if (t_pool == this && t_worker >= 0 && hint != SubmitHint::remote &&
      shard == kAnyShard) {
    Worker& w = *workers_[static_cast<std::size_t>(t_worker)];
    if (hint == SubmitHint::local) {
      // Hinted hand-off: bound the local backlog. Past the soft cap, spill
      // to injection so ready work stays visible to thieves (and external
      // helpers) that probe the MPSC queue before stealing.
      if (w.deque.size_approx() >= cfg_.local_queue_soft_cap) [[unlikely]] {
        w.overflowed.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kDequeOverflow, cell->trace_id,
                    static_cast<std::uint64_t>(t_worker));
        }
        push_injected(cell, w.shard);
        return w.shard;
      }
      w.cont_local.fetch_add(1, std::memory_order_relaxed);
      if (obs::tracing()) [[unlikely]] {
        obs::emit(obs::EventKind::kContLocalPush, cell->trace_id, 0);
      }
    }
    w.deque.push(cell);
    if (obs::tracing()) [[unlikely]] {
      // Queue-depth high-water, sampled only while a trace session is live:
      // size_approx on the idle fast path would cost two loads we promised
      // not to pay. Owner-only write, so a relaxed read-modify-store is fine.
      const auto depth = static_cast<std::uint64_t>(w.deque.size_approx());
      if (depth > w.deque_hw.load(std::memory_order_relaxed)) {
        w.deque_hw.store(depth, std::memory_order_relaxed);
      }
    }
    return w.shard;
  }
  const std::size_t target = resolve_shard(shard);
  if (hint == SubmitHint::local && !(t_pool == this && t_worker >= 0)) {
    // A local hint from a non-worker completer (EDT, main thread): the
    // continuation-stealing fast path does not apply; count the fallback so
    // traces show dependent work that crossed threads.
    cont_inject_fallback_.fetch_add(1, std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kContInjectFallback, cell->trace_id, 0);
    }
  }
  push_injected(cell, target);
  return target;
}

void WorkStealingPool::push_injected(TaskCell* cell, std::size_t shard) {
  Shard& s = *shards_[shard];
  s.injected.push(cell);
  if (obs::tracing()) [[unlikely]] {
    const auto depth = static_cast<std::uint64_t>(s.injected.size_approx());
    std::uint64_t hw = s.injected_hw.load(std::memory_order_relaxed);
    while (depth > hw && !s.injected_hw.compare_exchange_weak(
                             hw, depth, std::memory_order_relaxed)) {
    }
  }
}

void WorkStealingPool::push_exclusive(TaskCell* cell, std::size_t shard) {
  shards_[shard]->exclusive.push(cell);
}

// --------------------------------------------------------------------------
// Finding and running work.
// --------------------------------------------------------------------------

// Wakeup correctness across shards (the 1-core deadlock guard, sharded):
// a submission must never strand behind a fully parked pool. Within the
// target shard the single-epoch protocol from the header comment applies
// verbatim. Across shards the protocol is a Dekker handshake on seq_cst
// accesses: the parker increments its shard's `sleepers` (seq_cst RMW)
// *before* its final predicate check reads every shard's epoch (seq_cst),
// and the submitter bumps the target epoch (seq_cst RMW) *before* reading
// every shard's `sleepers` (seq_cst). In the total order, either the
// submitter's sleepers-read sees the parker (→ the fallback below notifies
// that shard's CV), or the parker's epoch-read sees the bump (→ the wait
// predicate is already true and the worker never sleeps). A worker that is
// *already* asleep is covered by the mutex: the fallback notifies under the
// sleeper's park_mutex, which orders the epoch bump before the woken
// predicate re-check.
void WorkStealingPool::signal_work(std::size_t shard, std::size_t jobs) {
  Shard& target = *shards_[shard];
  target.work_epoch.fetch_add(1, std::memory_order_seq_cst);
  if (target.sleepers.load(std::memory_order_seq_cst) != 0) {
    std::scoped_lock lock(target.park_mutex);
    if (jobs > 1) {
      target.park_cv.notify_all();
    } else {
      target.park_cv.notify_one();
    }
    return;
  }
  const std::size_t n = shards_.size();
  if (n == 1) return;
  // Work-conservation fallback: the target shard is sleeper-free (its
  // workers are busy or spinning), but another domain may be parked. Wake
  // one remote sleeper so it can cross-probe the target's queues — a job
  // must never wait on a busy shard while any worker in the pool sleeps.
  for (std::size_t k = 1; k < n; ++k) {
    Shard& other = *shards_[(shard + k) % n];
    if (other.sleepers.load(std::memory_order_seq_cst) == 0) continue;
    cross_shard_wakes_.fetch_add(1, std::memory_order_relaxed);
    std::scoped_lock lock(other.park_mutex);
    if (jobs > 1) {
      other.park_cv.notify_all();
    } else {
      other.park_cv.notify_one();
    }
    return;
  }
}

TaskCell* WorkStealingPool::pop_injected(std::size_t shard) {
  Shard& s = *shards_[shard];
  if (s.injected.empty_approx()) return nullptr;
  // Serialise MPSC consumers without blocking: if another thread is already
  // draining, this caller just moves on to stealing.
  if (s.inject_pop_lock.test_and_set(std::memory_order_acquire)) {
    return nullptr;
  }
  TaskCell* cell = s.injected.try_pop();
  s.inject_pop_lock.clear(std::memory_order_release);
  return cell;
}

TaskCell* WorkStealingPool::pop_exclusive(std::size_t shard) {
  Shard& s = *shards_[shard];
  if (s.exclusive.empty_approx()) return nullptr;
  if (s.exclusive_pop_lock.test_and_set(std::memory_order_acquire)) {
    return nullptr;
  }
  TaskCell* cell = s.exclusive.try_pop();
  s.exclusive_pop_lock.clear(std::memory_order_release);
  return cell;
}

TaskCell* WorkStealingPool::pop_exclusive_any(std::size_t home_shard) {
  const std::size_t n = shards_.size();
  for (std::size_t k = 1; k < n; ++k) {
    if (TaskCell* cell = pop_exclusive((home_shard + k) % n)) return cell;
  }
  return nullptr;
}

bool WorkStealingPool::any_exclusive_pending() const noexcept {
  for (const auto& s : shards_) {
    if (!s->exclusive.empty_approx()) return true;
  }
  return false;
}

TaskCell* WorkStealingPool::steal_within_shard(std::size_t self, Rng& rng) {
  const Shard& home = *shards_[workers_[self]->shard];
  const std::size_t n = home.num_workers;
  if (n <= 1) return nullptr;
  const std::size_t start = static_cast<std::size_t>(rng.below(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = home.first_worker + (start + k) % n;
    if (v == self) continue;
    if (TaskCell* cell = workers_[v]->deque.steal()) {
      if (obs::tracing()) [[unlikely]] {
        obs::emit(obs::EventKind::kSteal, cell->trace_id,
                  static_cast<std::uint64_t>(v));
      }
      return cell;
    }
  }
  return nullptr;
}

// Remote phase of the hierarchical sweep: the thief's own domain ran dry.
// Visit foreign shards round-robin from the next-door neighbour; in each,
// prefer its injection queue (FIFO work nobody has claimed) before raiding
// its workers' deques. Only deque raids count as cross-shard *steals*;
// entering this phase at all is counted by the caller as a cross-probe.
TaskCell* WorkStealingPool::steal_remote_shards(std::size_t self) {
  Worker& w = *workers_[self];
  const std::size_t n = shards_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t si = (w.shard + k) % n;
    if (TaskCell* cell = pop_injected(si)) return cell;
    const Shard& s = *shards_[si];
    for (std::size_t j = 0; j < s.num_workers; ++j) {
      const std::size_t v = s.first_worker + j;
      if (TaskCell* cell = workers_[v]->deque.steal()) {
        w.stolen_cross.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kStealRemote, cell->trace_id,
                    static_cast<std::uint64_t>(v));
        }
        return cell;
      }
    }
  }
  return nullptr;
}

TaskCell* WorkStealingPool::find_worker_job(std::size_t index) {
  // Top-of-loop worker frames are the only consumers of the exclusive
  // queues, and they check them first: an exclusive job is a region member
  // that a whole team is waiting on, so it outranks ordinary backlog. Own
  // shard first (the pj places soft binding), then every foreign queue —
  // the drain-anywhere rule keeps the capacity-reservation deadlock
  // argument shard-count-independent.
  const std::size_t home = workers_[index]->shard;
  if (TaskCell* cell = pop_exclusive(home)) return cell;
  if (shards_.size() > 1) {
    if (TaskCell* cell = pop_exclusive_any(home)) return cell;
  }
  return find_job(index);
}

TaskCell* WorkStealingPool::find_job(std::size_t self_or_npos) {
  if (self_or_npos != static_cast<std::size_t>(-1)) {
    Worker& w = *workers_[self_or_npos];
    // Hierarchical sweep: own deque → own shard's injection queue → shard
    // siblings' deques (randomized start) → only then cross the domain
    // boundary.
    if (TaskCell* cell = w.deque.pop()) return cell;
    if (TaskCell* cell = pop_injected(w.shard)) return cell;
    if (TaskCell* cell = steal_within_shard(self_or_npos, w.rng)) {
      w.stolen.fetch_add(1, std::memory_order_relaxed);
      return cell;
    }
    if (shards_.size() > 1) {
      w.cross_probes.fetch_add(1, std::memory_order_relaxed);
      // Deque raids are counted as stolen_cross inside the remote sweep;
      // remote injection pops are ordinary queue takes, not steals.
      if (TaskCell* cell = steal_remote_shards(self_or_npos)) return cell;
    }
    return nullptr;
  }
  // External thread: drain injection queues first (starting at the thread's
  // resolved home domain), then steal with a deterministic rotating start.
  // Relaxed RMW on the cursor: it only spreads steal attempts, it
  // synchronises nothing.
  const std::size_t ns = shards_.size();
  const std::size_t first = resolve_shard(kAnyShard);
  for (std::size_t k = 0; k < ns; ++k) {
    if (TaskCell* cell = pop_injected((first + k) % ns)) return cell;
  }
  const std::size_t n = workers_.size();
  const std::size_t start =
      external_cursor_.fetch_add(1, std::memory_order_relaxed) %
      std::max<std::size_t>(n, 1);
  for (std::size_t k = 0; k < n; ++k) {
    if (TaskCell* cell = workers_[(start + k) % n]->deque.steal()) return cell;
  }
  return nullptr;
}

void WorkStealingPool::run_cell(TaskCell* cell) {
  // Jobs are noexcept by contract: the runtimes above catch user exceptions
  // and store them into task state before the job returns. A throw escaping
  // here means a runtime bug, so let it terminate loudly.
  if (obs::tracing()) [[unlikely]] {
    // Capture the id before invoke(): the cell may be recycled (and even
    // re-stamped by a nested submit) the moment the job returns.
    const std::uint64_t id = cell->trace_id;
    obs::emit(obs::EventKind::kExecBegin, id, 0);
    cell->invoke();
    release_cell(cell);
    obs::emit(obs::EventKind::kExecEnd, id, 0);
    return;
  }
  cell->invoke();
  release_cell(cell);
}

void WorkStealingPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_worker = static_cast<int>(index);
  Worker& self = *workers_[index];
  Shard& home = *shards_[self.shard];
  if (shards_.size() > 1) {
    obs::label_thread(cfg_.name + "-s" + std::to_string(self.shard) + "-w" +
                      std::to_string(index));
  } else {
    obs::label_thread(cfg_.name + "-w" + std::to_string(index));
  }
  // Epoch snapshots for the park predicate, one per shard: allocated once
  // outside the loop so parking never touches the heap.
  std::vector<std::uint64_t> seen(shards_.size(), 0);
  while (!stop_.load(std::memory_order_acquire)) {
    TaskCell* cell = nullptr;
    for (std::size_t sweep = 0; sweep < cfg_.sweeps_before_park && !cell;
         ++sweep) {
      cell = find_worker_job(index);
      if (!cell) {
        self.steal_fails.fetch_add(1, std::memory_order_relaxed);
        if (sweep + 1 < cfg_.sweeps_before_park) std::this_thread::yield();
      }
    }
    if (cell) {
      run_cell(cell);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Park protocol: snapshot every shard's epoch, then re-scan once. A
    // submit that lands after a snapshot bumps that shard's epoch (so the
    // wait predicate is already true); one that landed before it is found
    // by the re-scan, which crosses shard boundaries (find_worker_job's
    // remote phase). See signal_work for the cross-shard seq_cst handshake.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      seen[s] = shards_[s]->work_epoch.load(std::memory_order_seq_cst);
    }
    if (TaskCell* late = find_worker_job(index)) {
      run_cell(late);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Exclusive jobs have no help_while rescue path (only top-level worker
    // frames may run them), so a worker must not park past one — in any
    // shard. The re-scan above can miss a linked job only while another
    // popper holds a try-lock; spinning the outer loop instead of sleeping
    // closes that window.
    if (any_exclusive_pending()) continue;
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kPark, index, self.shard);
      if (shards_.size() > 1) {
        obs::emit(obs::EventKind::kParkShard, index, self.shard);
      }
    }
    std::unique_lock lock(home.park_mutex);
    home.sleepers.fetch_add(1, std::memory_order_seq_cst);
    self.parked.fetch_add(1, std::memory_order_relaxed);
    home.park_cv.wait(lock, [&] {
      if (stop_.load(std::memory_order_acquire)) return true;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (shards_[s]->work_epoch.load(std::memory_order_seq_cst) !=
            seen[s]) {
          return true;
        }
      }
      return false;
    });
    home.sleepers.fetch_sub(1, std::memory_order_seq_cst);
    lock.unlock();
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kUnpark, index, self.shard);
    }
  }
  t_pool = nullptr;
  t_worker = -1;
}

bool WorkStealingPool::try_run_one() {
  const std::size_t self =
      (t_pool == this && t_worker >= 0) ? static_cast<std::size_t>(t_worker)
                                        : static_cast<std::size_t>(-1);
  TaskCell* cell = find_job(self);
  if (!cell) return false;
  run_cell(cell);
  if (self != static_cast<std::size_t>(-1)) {
    workers_[self]->executed.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  s.shards.resize(shards_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    ShardStats& sh = s.shards[w.shard];
    const std::uint64_t executed = w.executed.load(std::memory_order_relaxed);
    const std::uint64_t stolen = w.stolen.load(std::memory_order_relaxed);
    const std::uint64_t cross = w.stolen_cross.load(std::memory_order_relaxed);
    const std::uint64_t probes = w.cross_probes.load(std::memory_order_relaxed);
    const std::uint64_t parked = w.parked.load(std::memory_order_relaxed);
    const std::uint64_t fails = w.steal_fails.load(std::memory_order_relaxed);
    s.executed += executed;
    s.stolen += stolen + cross;
    s.parked += parked;
    s.steal_fails += fails;
    s.deque_high_water = std::max(
        s.deque_high_water, w.deque_hw.load(std::memory_order_relaxed));
    s.continuation_local_pushed += w.cont_local.load(std::memory_order_relaxed);
    s.deque_overflows += w.overflowed.load(std::memory_order_relaxed);
    s.stolen_shard_local += stolen;
    s.stolen_cross_shard += cross;
    s.cross_shard_probes += probes;
    sh.executed += executed;
    sh.stolen += stolen + cross;
    sh.stolen_local += stolen;
    sh.stolen_cross += cross;
    sh.cross_probes += probes;
    sh.parked += parked;
    sh.steal_fails += fails;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t hw =
        shards_[i]->injected_hw.load(std::memory_order_relaxed);
    s.shards[i].injected_high_water = hw;
    s.injected_high_water = std::max(s.injected_high_water, hw);
    const auto asleep = static_cast<std::uint64_t>(
        std::max(shards_[i]->sleepers.load(std::memory_order_relaxed), 0));
    s.shards[i].sleeping = asleep;
    s.sleeping += asleep;
  }
  s.helped = helped_.load(std::memory_order_relaxed);
  s.continuation_inject_fallback =
      cont_inject_fallback_.load(std::memory_order_relaxed);
  s.exclusive_submitted = exclusive_submitted_.load(std::memory_order_relaxed);
  s.reservations_granted = reserve_granted_.load(std::memory_order_relaxed);
  s.reservations_denied = reserve_denied_.load(std::memory_order_relaxed);
  s.cross_shard_wakes = cross_shard_wakes_.load(std::memory_order_relaxed);
  return s;
}

std::size_t WorkStealingPool::pending_approx() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    n += s->injected.size_approx() + s->exclusive.size_approx();
  }
  for (const auto& w : workers_) n += w->deque.size_approx();
  return n;
}

}  // namespace parc::sched
