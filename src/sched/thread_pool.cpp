#include "sched/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/counters.hpp"
#include "sched/completion.hpp"
#include "support/check.hpp"

namespace parc::sched {

namespace {
// Identity of the calling thread within a pool. Plain thread_locals: a
// thread belongs to at most one pool for its lifetime.
thread_local WorkStealingPool* t_pool = nullptr;
thread_local int t_worker = -1;

// Cells handed to each worker per slab allocation. Slabs are allocated only
// when a worker's freelist and the shared return stack are both empty, so
// steady-state submission never touches the allocator.
constexpr std::size_t kSlabCells = 64;
// Above this, a worker's freelist spills back to the shared return stack so
// a pure-producer / pure-consumer pair cannot strand unbounded cells.
constexpr std::size_t kMaxLocalFree = 512;

// Continuation hand-off hook for the completion core (completion.hpp is
// deliberately pool-free, so the link runs through a function pointer
// installed at pool construction). Called by Completion::complete when a
// continuation cascade on this thread exceeds its inline depth budget:
// package the node as a pool job on the completing worker's own deque
// (SubmitHint::local — the node's inputs are hot right here). Declining
// (non-worker thread, or a worker of a *different* pool than the one whose
// job is completing is still fine — its own deque is equally warm) makes
// the caller run the node inline.
bool hand_off_continuation(CompletionNode* node,
                           std::uint64_t trace_id) noexcept {
  if (t_pool == nullptr || t_worker < 0) return false;
  // 16-byte capture: stays inside the TaskCell inline buffer.
  t_pool->submit(
      [node, trace_id]() noexcept { run_continuation_node(node, trace_id); },
      SubmitHint::local);
  return true;
}
}  // namespace

std::size_t default_concurrency() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(hc == 0 ? 1 : hc, 2);
}

WorkStealingPool* WorkStealingPool::current_pool() noexcept { return t_pool; }
int WorkStealingPool::current_worker() noexcept { return t_worker; }

WorkStealingPool::WorkStealingPool(Config cfg) : cfg_(std::move(cfg)) {
  PARC_CHECK(cfg_.num_threads >= 1);
  PARC_CHECK(cfg_.local_queue_soft_cap >= 1);
  // First pool up installs the completion core's hand-off hook (idempotent:
  // the hook re-resolves the calling thread's pool on every call, so it is
  // pool-agnostic and never uninstalled — see hand_off_continuation).
  detail::g_continuation_hand_off.store(&hand_off_continuation,
                                        std::memory_order_release);
  workers_.reserve(cfg_.num_threads);
  for (std::size_t i = 0; i < cfg_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(0x5157c0de + i));
  }
  threads_.reserve(cfg_.num_threads);
  for (std::size_t i = 0; i < cfg_.num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::scoped_lock lock(park_mutex_);
    park_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
  // Drain anything submitted after the workers left. Running (rather than
  // discarding) keeps the contract that every submitted job eventually
  // executes, so external waiters cannot hang on destruction. Exclusive
  // jobs get the same treatment: with the workers gone there is no frame
  // below this one that could be waiting on them.
  while (try_run_one()) {
  }
  while (TaskCell* cell = pop_exclusive()) {
    run_cell(cell);
  }
  // Cells are owned by slabs_ (freed with the vector) or were individually
  // heap-allocated and deleted after their run; nothing else to reclaim.
  const Stats s = stats();
  auto& counters = obs::Counters::global();
  counters.add("sched.pool.executed", s.executed);
  counters.add("sched.pool.stolen", s.stolen);
  counters.add("sched.pool.parked", s.parked);
  counters.add("sched.pool.helped", s.helped);
  counters.add("sched.pool.steal_fails", s.steal_fails);
  counters.add("sched.pool.cont_local_pushed", s.continuation_local_pushed);
  counters.add("sched.pool.cont_inject_fallback",
               s.continuation_inject_fallback);
  counters.add("sched.pool.deque_overflows", s.deque_overflows);
  counters.add("sched.pool.exclusive_submitted", s.exclusive_submitted);
  counters.add("sched.pool.reservations_granted", s.reservations_granted);
  counters.add("sched.pool.reservations_denied", s.reservations_denied);
}

bool WorkStealingPool::try_reserve_capacity(std::size_t n) noexcept {
  std::size_t cur = reserved_.load(std::memory_order_relaxed);
  do {
    if (cur + n > workers_.size()) {
      reserve_denied_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  } while (!reserved_.compare_exchange_weak(cur, cur + n,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  reserve_granted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void WorkStealingPool::release_capacity(std::size_t n) noexcept {
  PARC_DCHECK(reserved_.load(std::memory_order_relaxed) >= n);
  reserved_.fetch_sub(n, std::memory_order_release);
}

// --------------------------------------------------------------------------
// Cell recycling.
// --------------------------------------------------------------------------

TaskCell* WorkStealingPool::acquire_cell() {
  if (t_pool == this && t_worker >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(t_worker)];
    if (w.free_head == nullptr) refill_freelist(w);
    TaskCell* cell = w.free_head;
    w.free_head = cell->next.load(std::memory_order_relaxed);
    --w.free_count;
    return cell;
  }
  // External submitters have no freelist; one allocation, freed after the
  // run. Still an improvement over the seed (which also took a mutex).
  return new TaskCell;  // slab_owned stays false
}

void WorkStealingPool::refill_freelist(Worker& w) {
  PARC_DCHECK(w.free_head == nullptr);
  // First drain the shared return stack: cells recycled by thieves and
  // external helpers come back here. Taking the whole list at once makes
  // the pop ABA-free (no interior CAS).
  if (TaskCell* list = arena_free_.exchange(nullptr, std::memory_order_acquire)) {
    std::size_t n = 0;
    for (TaskCell* c = list; c != nullptr;
         c = c->next.load(std::memory_order_relaxed)) {
      ++n;
    }
    w.free_head = list;
    w.free_count = n;
    return;
  }
  std::scoped_lock lock(arena_mutex_);
  auto slab = std::make_unique<TaskCell[]>(kSlabCells);
  for (std::size_t i = 0; i < kSlabCells; ++i) {
    slab[i].slab_owned = true;
    slab[i].next.store(i + 1 < kSlabCells ? &slab[i + 1] : nullptr,
                       std::memory_order_relaxed);
  }
  w.free_head = &slab[0];
  w.free_count = kSlabCells;
  slabs_.push_back(std::move(slab));
}

void WorkStealingPool::release_cell(TaskCell* cell) {
  if (!cell->slab_owned) {
    delete cell;
    return;
  }
  if (t_pool == this && t_worker >= 0) {
    Worker& w = *workers_[static_cast<std::size_t>(t_worker)];
    if (w.free_count < kMaxLocalFree) {
      cell->next.store(w.free_head, std::memory_order_relaxed);
      w.free_head = cell;
      ++w.free_count;
      return;
    }
  }
  // Thief overflow or external helper: lock-free push onto the shared
  // return stack (push-only CAS + wholesale exchange on pop = no ABA).
  TaskCell* old = arena_free_.load(std::memory_order_relaxed);
  do {
    cell->next.store(old, std::memory_order_relaxed);
  } while (!arena_free_.compare_exchange_weak(
      old, cell, std::memory_order_release, std::memory_order_relaxed));
}

void WorkStealingPool::enqueue_cell(TaskCell* cell, SubmitHint hint) {
  if (t_pool == this && t_worker >= 0 && hint != SubmitHint::remote) {
    Worker& w = *workers_[static_cast<std::size_t>(t_worker)];
    if (hint == SubmitHint::local) {
      // Hinted hand-off: bound the local backlog. Past the soft cap, spill
      // to injection so ready work stays visible to thieves (and external
      // helpers) that probe the MPSC queue before stealing.
      if (w.deque.size_approx() >= cfg_.local_queue_soft_cap) [[unlikely]] {
        w.overflowed.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kDequeOverflow, cell->trace_id,
                    static_cast<std::uint64_t>(t_worker));
        }
        push_injected(cell);
        return;
      }
      w.cont_local.fetch_add(1, std::memory_order_relaxed);
      if (obs::tracing()) [[unlikely]] {
        obs::emit(obs::EventKind::kContLocalPush, cell->trace_id, 0);
      }
    }
    w.deque.push(cell);
    if (obs::tracing()) [[unlikely]] {
      // Queue-depth high-water, sampled only while a trace session is live:
      // size_approx on the idle fast path would cost two loads we promised
      // not to pay. Owner-only write, so a relaxed read-modify-store is fine.
      const auto depth = static_cast<std::uint64_t>(w.deque.size_approx());
      if (depth > w.deque_hw.load(std::memory_order_relaxed)) {
        w.deque_hw.store(depth, std::memory_order_relaxed);
      }
    }
    return;
  }
  if (hint == SubmitHint::local) {
    // A local hint from a non-worker completer (EDT, main thread): the
    // continuation-stealing fast path does not apply; count the fallback so
    // traces show dependent work that crossed threads.
    cont_inject_fallback_.fetch_add(1, std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kContInjectFallback, cell->trace_id, 0);
    }
  }
  push_injected(cell);
}

void WorkStealingPool::push_injected(TaskCell* cell) {
  injected_.push(cell);
  if (obs::tracing()) [[unlikely]] {
    const auto depth = static_cast<std::uint64_t>(injected_.size_approx());
    std::uint64_t hw = injected_hw_.load(std::memory_order_relaxed);
    while (depth > hw && !injected_hw_.compare_exchange_weak(
                             hw, depth, std::memory_order_relaxed)) {
    }
  }
}

// --------------------------------------------------------------------------
// Finding and running work.
// --------------------------------------------------------------------------

void WorkStealingPool::signal_work(std::size_t jobs) {
  work_epoch_.fetch_add(1, std::memory_order_release);
  // No parked worker: skip the CV (and its mutex) entirely. See the header
  // comment for why this cannot lose a wakeup.
  if (sleepers_.load(std::memory_order_acquire) == 0) return;
  std::scoped_lock lock(park_mutex_);
  if (jobs > 1) {
    park_cv_.notify_all();
  } else {
    park_cv_.notify_one();
  }
}

TaskCell* WorkStealingPool::pop_injected() {
  if (injected_.empty_approx()) return nullptr;
  // Serialise MPSC consumers without blocking: if another thread is already
  // draining, this caller just moves on to stealing.
  if (inject_pop_lock_.test_and_set(std::memory_order_acquire)) return nullptr;
  TaskCell* cell = injected_.try_pop();
  inject_pop_lock_.clear(std::memory_order_release);
  return cell;
}

TaskCell* WorkStealingPool::pop_exclusive() {
  if (exclusive_.empty_approx()) return nullptr;
  if (exclusive_pop_lock_.test_and_set(std::memory_order_acquire)) {
    return nullptr;
  }
  TaskCell* cell = exclusive_.try_pop();
  exclusive_pop_lock_.clear(std::memory_order_release);
  return cell;
}

TaskCell* WorkStealingPool::steal_from_others(std::size_t self_or_npos,
                                              Rng& rng) {
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  const std::size_t start = static_cast<std::size_t>(rng.below(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (v == self_or_npos) continue;
    if (TaskCell* cell = workers_[v]->deque.steal()) {
      if (obs::tracing()) [[unlikely]] {
        obs::emit(obs::EventKind::kSteal, cell->trace_id,
                  static_cast<std::uint64_t>(v));
      }
      return cell;
    }
  }
  return nullptr;
}

TaskCell* WorkStealingPool::find_worker_job(std::size_t index) {
  // Top-of-loop worker frames are the only consumers of the exclusive
  // queue, and they check it first: an exclusive job is a region member
  // that a whole team is waiting on, so it outranks ordinary backlog.
  if (TaskCell* cell = pop_exclusive()) return cell;
  return find_job(index);
}

TaskCell* WorkStealingPool::find_job(std::size_t self_or_npos) {
  if (self_or_npos != static_cast<std::size_t>(-1)) {
    if (TaskCell* cell = workers_[self_or_npos]->deque.pop()) return cell;
  }
  if (TaskCell* cell = pop_injected()) return cell;
  if (self_or_npos != static_cast<std::size_t>(-1)) {
    Worker& w = *workers_[self_or_npos];
    if (TaskCell* cell = steal_from_others(self_or_npos, w.rng)) {
      w.stolen.fetch_add(1, std::memory_order_relaxed);
      return cell;
    }
    return nullptr;
  }
  // External thread: deterministic rotating start, thief-side only. Relaxed
  // RMW: the cursor only spreads steal attempts, it synchronises nothing.
  const std::size_t n = workers_.size();
  const std::size_t start =
      external_cursor_.fetch_add(1, std::memory_order_relaxed) %
      std::max<std::size_t>(n, 1);
  for (std::size_t k = 0; k < n; ++k) {
    if (TaskCell* cell = workers_[(start + k) % n]->deque.steal()) return cell;
  }
  return nullptr;
}

void WorkStealingPool::run_cell(TaskCell* cell) {
  // Jobs are noexcept by contract: the runtimes above catch user exceptions
  // and store them into task state before the job returns. A throw escaping
  // here means a runtime bug, so let it terminate loudly.
  if (obs::tracing()) [[unlikely]] {
    // Capture the id before invoke(): the cell may be recycled (and even
    // re-stamped by a nested submit) the moment the job returns.
    const std::uint64_t id = cell->trace_id;
    obs::emit(obs::EventKind::kExecBegin, id, 0);
    cell->invoke();
    release_cell(cell);
    obs::emit(obs::EventKind::kExecEnd, id, 0);
    return;
  }
  cell->invoke();
  release_cell(cell);
}

void WorkStealingPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_worker = static_cast<int>(index);
  obs::label_thread(cfg_.name + "-w" + std::to_string(index));
  Worker& self = *workers_[index];
  while (!stop_.load(std::memory_order_acquire)) {
    TaskCell* cell = nullptr;
    for (std::size_t sweep = 0; sweep < cfg_.sweeps_before_park && !cell;
         ++sweep) {
      cell = find_worker_job(index);
      if (!cell) {
        self.steal_fails.fetch_add(1, std::memory_order_relaxed);
        if (sweep + 1 < cfg_.sweeps_before_park) std::this_thread::yield();
      }
    }
    if (cell) {
      run_cell(cell);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Park protocol: snapshot the epoch, then re-scan once. A submit that
    // lands after the snapshot bumps the epoch (so the wait predicate is
    // already true); one that landed before it is found by the re-scan.
    const std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    if (TaskCell* late = find_worker_job(index)) {
      run_cell(late);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Exclusive jobs have no help_while rescue path (only top-level worker
    // frames may run them), so a worker must not park past one. The re-scan
    // above can miss a linked job only while another popper holds the
    // try-lock; spinning the outer loop instead of sleeping closes that
    // window.
    if (!exclusive_.empty_approx()) continue;
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kPark, index, 0);
    }
    std::unique_lock lock(park_mutex_);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    self.parked.fetch_add(1, std::memory_order_relaxed);
    park_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_acquire) != seen;
    });
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
    lock.unlock();
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kUnpark, index, 0);
    }
  }
  t_pool = nullptr;
  t_worker = -1;
}

bool WorkStealingPool::try_run_one() {
  const std::size_t self =
      (t_pool == this && t_worker >= 0) ? static_cast<std::size_t>(t_worker)
                                        : static_cast<std::size_t>(-1);
  TaskCell* cell = find_job(self);
  if (!cell) return false;
  run_cell(cell);
  if (self != static_cast<std::size_t>(-1)) {
    workers_[self]->executed.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.executed += w->executed.load(std::memory_order_relaxed);
    s.stolen += w->stolen.load(std::memory_order_relaxed);
    s.parked += w->parked.load(std::memory_order_relaxed);
    s.steal_fails += w->steal_fails.load(std::memory_order_relaxed);
    s.deque_high_water = std::max(
        s.deque_high_water, w->deque_hw.load(std::memory_order_relaxed));
    s.continuation_local_pushed += w->cont_local.load(std::memory_order_relaxed);
    s.deque_overflows += w->overflowed.load(std::memory_order_relaxed);
  }
  s.helped = helped_.load(std::memory_order_relaxed);
  s.injected_high_water = injected_hw_.load(std::memory_order_relaxed);
  s.continuation_inject_fallback =
      cont_inject_fallback_.load(std::memory_order_relaxed);
  s.exclusive_submitted = exclusive_submitted_.load(std::memory_order_relaxed);
  s.reservations_granted = reserve_granted_.load(std::memory_order_relaxed);
  s.reservations_denied = reserve_denied_.load(std::memory_order_relaxed);
  return s;
}

std::size_t WorkStealingPool::pending_approx() const {
  std::size_t n = injected_.size_approx() + exclusive_.size_approx();
  for (const auto& w : workers_) n += w->deque.size_approx();
  return n;
}

}  // namespace parc::sched
