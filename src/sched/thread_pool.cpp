#include "sched/thread_pool.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parc::sched {

namespace {
// Identity of the calling thread within a pool. Plain thread_locals: a
// thread belongs to at most one pool for its lifetime.
thread_local WorkStealingPool* t_pool = nullptr;
thread_local int t_worker = -1;
}  // namespace

std::size_t default_concurrency() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(hc == 0 ? 1 : hc, 2);
}

WorkStealingPool* WorkStealingPool::current_pool() noexcept { return t_pool; }
int WorkStealingPool::current_worker() noexcept { return t_worker; }

WorkStealingPool::WorkStealingPool(Config cfg) : cfg_(std::move(cfg)) {
  PARC_CHECK(cfg_.num_threads >= 1);
  workers_.reserve(cfg_.num_threads);
  for (std::size_t i = 0; i < cfg_.num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>(0x5157c0de + i));
  }
  threads_.reserve(cfg_.num_threads);
  for (std::size_t i = 0; i < cfg_.num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::scoped_lock lock(park_mutex_);
    park_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
  // Drain anything submitted after the workers left. Running (rather than
  // discarding) keeps the contract that every submitted job eventually
  // executes, so external waiters cannot hang on destruction.
  while (try_run_one()) {
  }
}

void WorkStealingPool::signal_work() {
  work_epoch_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    // Locking before notify pairs with the waiter's epoch check under the
    // same mutex and closes the lost-wakeup window.
    std::scoped_lock lock(park_mutex_);
    park_cv_.notify_one();
  }
}

void WorkStealingPool::submit(std::function<void()> fn) {
  PARC_CHECK(fn != nullptr);
  auto* job = new Job{std::move(fn)};
  if (t_pool == this && t_worker >= 0) {
    workers_[static_cast<std::size_t>(t_worker)]->deque.push(job);
  } else {
    std::scoped_lock lock(inject_mutex_);
    injected_.push_back(job);
  }
  signal_work();
}

WorkStealingPool::Job* WorkStealingPool::pop_injected() {
  std::scoped_lock lock(inject_mutex_);
  if (injected_.empty()) return nullptr;
  Job* job = injected_.front();
  injected_.pop_front();
  return job;
}

WorkStealingPool::Job* WorkStealingPool::steal_from_others(
    std::size_t self_or_npos, Rng& rng) {
  const std::size_t n = workers_.size();
  if (n == 0) return nullptr;
  const std::size_t start = static_cast<std::size_t>(rng.below(n));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (v == self_or_npos) continue;
    if (Job* job = workers_[v]->deque.steal()) return job;
  }
  return nullptr;
}

WorkStealingPool::Job* WorkStealingPool::find_job(std::size_t self_or_npos) {
  if (self_or_npos != static_cast<std::size_t>(-1)) {
    if (Job* job = workers_[self_or_npos]->deque.pop()) return job;
  }
  if (Job* job = pop_injected()) return job;
  if (self_or_npos != static_cast<std::size_t>(-1)) {
    Worker& w = *workers_[self_or_npos];
    if (Job* job = steal_from_others(self_or_npos, w.rng)) {
      ++w.stolen;
      return job;
    }
    return nullptr;
  }
  // External thread: deterministic rotating start, thief-side only.
  const std::size_t n = workers_.size();
  const std::size_t start = external_cursor_.fetch_add(1) % std::max<std::size_t>(n, 1);
  for (std::size_t k = 0; k < n; ++k) {
    if (Job* job = workers_[(start + k) % n]->deque.steal()) return job;
  }
  return nullptr;
}

void WorkStealingPool::run_job(Job* job) {
  // Jobs are noexcept by contract: the runtimes above catch user exceptions
  // and store them into task state before the job returns. A throw escaping
  // here means a runtime bug, so let it terminate loudly.
  job->fn();
  delete job;
}

void WorkStealingPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_worker = static_cast<int>(index);
  Worker& self = *workers_[index];
  while (!stop_.load(std::memory_order_acquire)) {
    Job* job = nullptr;
    for (std::size_t sweep = 0; sweep < cfg_.sweeps_before_park && !job;
         ++sweep) {
      job = find_job(index);
      if (!job && sweep + 1 < cfg_.sweeps_before_park) std::this_thread::yield();
    }
    if (job) {
      run_job(job);
      ++self.executed;
      continue;
    }
    // Park protocol: snapshot the epoch, then re-scan once. A submit that
    // lands after the snapshot bumps the epoch (so the wait predicate is
    // already true); one that landed before it is found by the re-scan.
    const std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    if (Job* late = find_job(index)) {
      run_job(late);
      ++self.executed;
      continue;
    }
    std::unique_lock lock(park_mutex_);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    ++self.parked;
    park_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_acquire) != seen;
    });
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  }
  t_pool = nullptr;
  t_worker = -1;
}

bool WorkStealingPool::try_run_one() {
  const std::size_t self =
      (t_pool == this && t_worker >= 0) ? static_cast<std::size_t>(t_worker)
                                        : static_cast<std::size_t>(-1);
  Job* job = find_job(self);
  if (!job) return false;
  run_job(job);
  if (self != static_cast<std::size_t>(-1)) ++workers_[self]->executed;
  return true;
}

void WorkStealingPool::help_while(const std::function<bool()>& keep_waiting) {
  std::size_t idle_spins = 0;
  while (keep_waiting()) {
    if (try_run_one()) {
      helped_.fetch_add(1, std::memory_order_relaxed);
      idle_spins = 0;
      continue;
    }
    // Nothing runnable: the condition must be waiting on a job currently
    // executing elsewhere. Yield, escalating to a short sleep to avoid
    // burning a core on oversubscribed hosts.
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

WorkStealingPool::Stats WorkStealingPool::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.executed += w->executed;
    s.stolen += w->stolen;
    s.parked += w->parked;
  }
  s.helped = helped_.load(std::memory_order_relaxed);
  return s;
}

std::size_t WorkStealingPool::pending_approx() const {
  std::size_t n;
  {
    std::scoped_lock lock(inject_mutex_);
    n = injected_.size();
  }
  for (const auto& w : workers_) n += w->deque.size_approx();
  return n;
}

}  // namespace parc::sched
