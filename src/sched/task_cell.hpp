// TaskCell: a recyclable, small-buffer-optimised job slot for the
// work-stealing pool.
//
// The seed scheduler paid one `new Job{std::function}` per submission — two
// heap allocations for any capture larger than the libstdc++ SBO (16 bytes)
// — and that constant is multiplied into every spawn the runtimes make. A
// TaskCell instead stores the callable inline when it fits in
// `kInlineBytes` (6 pointers — enough for the chunk/task closures the
// ptask and pj runtimes generate) and falls back to a single heap block
// otherwise. Cells themselves are never freed on the fast path: the pool
// recycles them through per-worker freelists backed by slabs, so a
// worker-local submit of a small capture touches the heap zero times.
//
// The embedded `next` pointer doubles as the intrusive link for both the
// MPSC injection queue and the freelists (a cell is never in two lists at
// once: queued, executing, or free are mutually exclusive states).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/check.hpp"

namespace parc::sched {

class TaskCell {
 public:
  /// Captures up to this size (and max_align_t alignment) are stored inline.
  static constexpr std::size_t kInlineBytes = 6 * sizeof(void*);

  TaskCell() = default;
  ~TaskCell() { clear(); }

  TaskCell(const TaskCell&) = delete;
  TaskCell& operator=(const TaskCell&) = delete;

  /// True when callables of type F avoid the heap fallback.
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() noexcept {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t);
  }

  /// Store a callable. The cell must be empty. Move-only callables are fine
  /// on both paths (the seed's std::function required copyability).
  template <typename F>
  void emplace(F&& fn) {
    PARC_DCHECK(!armed());
    using Fn = std::decay_t<F>;
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      run_ = &run_inline<Fn>;
      drop_ = &drop_inline<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      run_ = &run_heap<Fn>;
      drop_ = &drop_heap<Fn>;
    }
  }

  /// Run and destroy the stored callable, leaving the cell empty and ready
  /// for re-use. Jobs are noexcept by pool contract.
  void invoke() {
    PARC_DCHECK(armed());
    Thunk run = run_;
    run_ = nullptr;
    drop_ = nullptr;
    run(this);
  }

  /// Destroy the stored callable without running it (discard paths/tests).
  void clear() noexcept {
    if (drop_ != nullptr) {
      Thunk drop = drop_;
      run_ = nullptr;
      drop_ = nullptr;
      drop(this);
    }
  }

  [[nodiscard]] bool armed() const noexcept { return run_ != nullptr; }

  /// Intrusive link: MPSC injection queue while queued externally, freelist
  /// chain while recycled. Only the list that currently owns the cell
  /// touches it.
  std::atomic<TaskCell*> next{nullptr};

  /// Set once at allocation by the pool: slab cells are recycled through
  /// freelists, individually `new`ed cells (external submitters that have no
  /// freelist) are deleted after execution.
  bool slab_owned = false;

  /// obs trace id of the stored job (0 = untraced). Stamped on submit while
  /// a trace session is live, read by the pool's exec/steal trace events.
  std::uint64_t trace_id = 0;

 private:
  using Thunk = void (*)(TaskCell*);

  template <typename Fn>
  static void run_inline(TaskCell* cell) {
    Fn* fn = std::launder(reinterpret_cast<Fn*>(cell->storage_));
    (*fn)();
    fn->~Fn();
  }

  template <typename Fn>
  static void drop_inline(TaskCell* cell) noexcept {
    std::launder(reinterpret_cast<Fn*>(cell->storage_))->~Fn();
  }

  template <typename Fn>
  static void run_heap(TaskCell* cell) {
    std::unique_ptr<Fn> fn(static_cast<Fn*>(cell->heap_));
    cell->heap_ = nullptr;
    (*fn)();
  }

  template <typename Fn>
  static void drop_heap(TaskCell* cell) noexcept {
    delete static_cast<Fn*>(cell->heap_);
    cell->heap_ = nullptr;
  }

  Thunk run_ = nullptr;
  Thunk drop_ = nullptr;
  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void* heap_;
  };
};

}  // namespace parc::sched
