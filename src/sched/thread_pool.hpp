// Work-stealing thread pool: the execution engine under both the
// ParallelTask runtime (parc::ptask) and the Pyjama runtime (parc::pj).
//
// Design (all per C++ Core Guidelines CP rules):
//  - one Chase–Lev deque per worker; a worker pushes spawned jobs to its own
//    deque and pops LIFO (work-first, good locality), thieves steal FIFO;
//  - jobs live in recyclable small-buffer TaskCells (task_cell.hpp) drawn
//    from per-worker freelists backed by slabs: a worker-local submit of a
//    small capture performs zero heap allocations;
//  - workers are partitioned into *locality domains* (Config::shards):
//    each shard owns its own lock-free Vyukov MPSC injection queue, its own
//    exclusive-job queue, and its own park list (epoch + condition
//    variable), so a submission wakes and feeds only the domain it targets;
//  - victim selection is hierarchical: a worker pops its own deque, drains
//    its own shard's injection queue, steals from shard siblings
//    (randomized start), and only when its whole shard runs dry probes
//    remote shards (injection queue first, then deques). Local vs
//    cross-shard steals are counted separately (Stats), and cross-shard
//    steals emit their own trace event (kStealRemote);
//  - submission is locality-hinted (SubmitHint): newly-ready continuations
//    and dependence-released tasks completed on a worker are pushed onto
//    that worker's own deque tail (continuation stealing — cache-hot,
//    LIFO-next, steal-able by idle siblings), with a counted fallback to
//    injection for non-worker completers and a soft-cap overflow so a deep
//    local backlog stays visible to thieves. A submission may also name an
//    explicit shard (submit(fn, hint, shard)), which routes to that shard's
//    injection queue regardless of the submitting thread;
//  - workers park on their shard's condition variable when repeated steal
//    sweeps fail; bulk submissions (submit_bulk / submit_n) bump the shard
//    epoch and notify once per batch, not once per job. When a submission
//    targets a shard with no parked workers while another shard has some,
//    one remote sleeper is woken as a work-conservation fallback (counted
//    as cross_shard_wakes) — a job must never wait on a busy shard while
//    any worker in the pool sleeps;
//  - blocking waits never block a worker thread: waiters call help_while(),
//    executing pending jobs until their condition holds. This is what makes
//    nested task waits (recursive quicksort!) and the project-6 "task-safe"
//    collections deadlock-free on a bounded pool;
//  - threads are joined in the destructor (never detached, CP.26).
//
// Wakeup ordering contract (signal_work / park), per shard: a submitter
// fully publishes the job (deque push or completed MPSC link), then
// increments the target shard's `work_epoch` (release) and, only if that
// shard's `sleepers > 0`, takes its `park_mutex` and notifies. A parking
// worker snapshots its own shard's epoch, re-scans every queue (all
// shards), and then waits on the CV with the predicate `epoch != snapshot`.
// Any submission targeting this shard that the re-scan could have missed
// must have bumped the epoch after the snapshot, so the predicate is
// already true and the wait returns immediately. A submission targeting
// *another* shard wakes that shard's sleepers (or, via the fallback above,
// bumps this shard's epoch too before notifying here), so no job is ever
// stranded behind a parked pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/mpsc_queue.hpp"
#include "sched/task_cell.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace parc::sched {

/// Number of workers to use when the caller does not say: the hardware
/// concurrency, but at least 2 so that parallel semantics are exercised even
/// on single-core containers like CI runners.
[[nodiscard]] std::size_t default_concurrency() noexcept;

/// Locality hint for the submission surface: where a job should land
/// relative to the submitting thread. Every submit/submit_bulk/submit_n
/// overload takes one; the unhinted spellings forward `auto_`.
enum class SubmitHint : std::uint8_t {
  /// Resolve at submit time: the caller's own deque when the caller is a
  /// worker of this pool, the injection queue otherwise. The right default
  /// for fresh spawns.
  auto_,
  /// Continuation hand-off: the job is newly-ready dependent work whose
  /// inputs are hot in the submitting worker's cache, so it belongs on that
  /// worker's deque tail (LIFO-next, steal-able by idle siblings). From a
  /// non-worker thread this falls back to injection (counted, so traces
  /// show where dependent work actually ran); on a worker whose deque is
  /// past Config::local_queue_soft_cap it overflows to injection to keep
  /// ready work visible to thieves that only probe the MPSC queue.
  local,
  /// Force the injection queue even from a worker: FIFO-fair work that
  /// should not shadow the worker's own LIFO stack (e.g. bench harnesses
  /// isolating the wakeup path). Combined with an explicit shard id this is
  /// the "run over there" spelling: the job lands on the named locality
  /// domain's injection queue.
  remote,
};

class WorkStealingPool {
 public:
  /// "No shard named": submissions resolve their target shard from the
  /// submitting thread (its home shard for workers, its bound shard for
  /// pinned externals, a stable thread hash otherwise).
  static constexpr std::size_t kAnyShard = static_cast<std::size_t>(-1);

  struct Config {
    std::size_t num_threads = default_concurrency();
    /// Steal sweeps over all victims before a worker parks.
    std::size_t sweeps_before_park = 4;
    std::string name = "parc";
    /// SubmitHint::local pushes overflow to the injection queue once the
    /// submitter's own deque holds this many jobs (the Chase–Lev deque
    /// itself grows without bound; the cap is a visibility/fairness policy,
    /// not a capacity limit). Checked only on the hinted-local path.
    std::size_t local_queue_soft_cap = 4096;
    /// Locality domains the workers are partitioned into (contiguous
    /// blocks). 1 = the classic single-domain pool (behavior-identical to
    /// the pre-shard scheduler); 0 = auto (workers / 4, at least 1). Always
    /// clamped to num_threads so no shard is empty.
    std::size_t shards = 1;
  };

  /// Per-shard counter snapshot (see stats() for the consistency contract).
  struct ShardStats {
    std::uint64_t executed = 0;      ///< jobs run by this shard's workers
    std::uint64_t stolen = 0;        ///< successful steals (local + cross)
    std::uint64_t stolen_local = 0;  ///< victim was a shard sibling
    std::uint64_t stolen_cross = 0;  ///< victim was in another shard
    std::uint64_t cross_probes = 0;  ///< sweeps that went past the own shard
    std::uint64_t parked = 0;        ///< times a worker of this shard slept
    std::uint64_t steal_fails = 0;   ///< sweeps that found no job
    std::uint64_t injected_high_water = 0;  ///< shard MPSC depth (traced only)
    /// Workers of this shard asleep right now (gauge, not monotonic). A
    /// worker counts from the moment its final pre-park re-scan came up
    /// empty, so `sleeping == shard size` means no worker of the shard can
    /// take a job until a submission bumps the work epoch.
    std::uint64_t sleeping = 0;
  };

  /// Counter snapshot. Consistency contract: every counter is a relaxed
  /// atomic written by its owning worker (or, for pool-level counters, by
  /// arbitrary submitters) and summed here without any synchronisation —
  /// the snapshot is *not* a consistent cut. Each counter is monotonic and
  /// eventually visible, so deltas observed after a quiescent point (all
  /// submitted work known to have completed) are exact; mid-run reads may
  /// transiently disagree across counters (e.g. `executed` can lag the
  /// `stolen` that fed it). Tests that assert exact counts must quiesce
  /// first. `shard(i)` exposes the same counters per locality domain;
  /// pool-wide fields are always the sum of their shard columns plus the
  /// non-worker contributions (helped, continuation_inject_fallback).
  struct Stats {
    std::uint64_t executed = 0;     ///< jobs run to completion
    std::uint64_t stolen = 0;       ///< jobs obtained by stealing
    std::uint64_t parked = 0;       ///< times a worker went to sleep
    std::uint64_t sleeping = 0;     ///< workers asleep right now (gauge)
    std::uint64_t helped = 0;       ///< jobs run inside help_while()
    std::uint64_t steal_fails = 0;  ///< worker sweeps that found no job
    /// Queue-depth high-water marks. Sampled on the enqueue path only while
    /// an obs trace session is live (the sample costs a size_approx, which
    /// the idle fast path must not pay); 0 if never traced.
    std::uint64_t deque_high_water = 0;     ///< max local deque depth
    std::uint64_t injected_high_water = 0;  ///< max injection queue depth
    // Continuation-stealing hand-off outcomes (SubmitHint::local).
    std::uint64_t continuation_local_pushed = 0;   ///< landed on own deque
    std::uint64_t continuation_inject_fallback = 0;  ///< non-worker submitter
    std::uint64_t deque_overflows = 0;  ///< soft cap hit, spilled to inject
    // Exclusive-job / capacity-reservation outcomes (nested pj regions).
    std::uint64_t exclusive_submitted = 0;     ///< jobs via submit_exclusive
    std::uint64_t reservations_granted = 0;    ///< try_reserve_capacity ok
    std::uint64_t reservations_denied = 0;     ///< pool saturated
    // Hierarchical stealing outcomes. stolen_shard_local counts steals with
    // a same-domain victim (== stolen when Config::shards is 1); the cross
    // counters are all zero at shards=1.
    std::uint64_t stolen_shard_local = 0;  ///< steals with a same-shard victim
    std::uint64_t stolen_cross_shard = 0;  ///< steals that crossed a domain
    std::uint64_t cross_shard_probes = 0;  ///< sweeps entering the remote phase
    std::uint64_t cross_shard_wakes = 0;   ///< fallback wakes of a remote sleeper

    /// Per-shard snapshots, one entry per locality domain.
    std::vector<ShardStats> shards;
    [[nodiscard]] const ShardStats& shard(std::size_t i) const {
      return shards.at(i);
    }
  };

  WorkStealingPool() : WorkStealingPool(Config{}) {}
  explicit WorkStealingPool(Config cfg);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a job. Placement follows `hint` (see SubmitHint) and `shard`:
  /// a worker submitting to its own pool lands on its local deque
  /// (allocation-free for captures up to TaskCell::kInlineBytes) unless an
  /// explicit shard routes it to that domain's injection queue; any other
  /// thread goes to the resolved shard's lock-free injection queue.
  template <typename F>
  void submit(F&& fn, SubmitHint hint, std::size_t shard = kAnyShard) {
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      PARC_CHECK(static_cast<bool>(fn));
    }
    TaskCell* cell = acquire_cell();
    cell->emplace(std::forward<F>(fn));
    stamp_cell(cell);
    const std::size_t target = enqueue_cell(cell, hint, shard);
    signal_work(target, 1);
  }

  /// Unhinted legacy spelling: forwards SubmitHint::auto_.
  template <typename F>
  void submit(F&& fn) {
    submit(std::forward<F>(fn), SubmitHint::auto_);
  }

  /// Enqueue a batch of jobs (moved from), waking workers once for the
  /// whole batch instead of once per job. Used by the runtimes' chunked
  /// fan-out (ptask::run_multi). The whole batch targets one shard.
  template <typename F>
  void submit_bulk(std::span<F> fns, SubmitHint hint,
                   std::size_t shard = kAnyShard) {
    if (fns.empty()) return;
    std::size_t target = 0;
    for (F& fn : fns) {
      TaskCell* cell = acquire_cell();
      cell->emplace(std::move(fn));
      stamp_cell(cell);
      target = enqueue_cell(cell, hint, shard);
    }
    signal_work(target, fns.size());
  }

  /// Unhinted legacy spelling: forwards SubmitHint::auto_.
  template <typename F>
  void submit_bulk(std::span<F> fns) {
    submit_bulk(fns, SubmitHint::auto_);
  }

  /// Enqueue `count` jobs produced by `factory(i)` for i in [0, count) —
  /// the no-intermediate-storage spelling of submit_bulk for generated
  /// closures. One wakeup for the whole batch.
  template <typename Factory>
  void submit_n(std::size_t count, Factory&& factory, SubmitHint hint,
                std::size_t shard = kAnyShard) {
    if (count == 0) return;
    std::size_t target = 0;
    for (std::size_t i = 0; i < count; ++i) {
      TaskCell* cell = acquire_cell();
      cell->emplace(factory(i));
      stamp_cell(cell);
      target = enqueue_cell(cell, hint, shard);
    }
    signal_work(target, count);
  }

  /// Unhinted legacy spelling: forwards SubmitHint::auto_.
  template <typename Factory>
  void submit_n(std::size_t count, Factory&& factory) {
    submit_n(count, std::forward<Factory>(factory), SubmitHint::auto_);
  }

  /// Enqueue a job that may *block its worker for long stretches* — a team
  /// member body parking or poll-waiting at region barriers. Exclusive jobs
  /// are taken only by workers at the top of their loop, never by
  /// try_run_one()/help_while(): a waiter that helps can have a blocked
  /// frame buried under it on the same stack, and running a member job
  /// there would let that member's barrier wait on the very frame it is
  /// sitting on (deadlock). Giving each member a fresh top-level worker
  /// frame makes member-to-member waits acyclic.
  ///
  /// `shard` names the locality domain whose workers should *prefer* the
  /// job (the pj places binding hook): it lands on that shard's exclusive
  /// queue, which that shard's workers check first at the top of every
  /// loop. The binding is soft — any worker drains foreign exclusive
  /// queues right after its own, so the "some top-of-loop frame always
  /// exists" deadlock-freedom argument is unchanged from the unsharded
  /// pool.
  ///
  /// Callers must bound in-flight exclusive jobs with
  /// try_reserve_capacity() first — exclusive jobs cannot be helped, so
  /// without a reservation more members than workers would wait forever.
  template <typename F>
  void submit_exclusive(F&& fn, std::size_t shard = kAnyShard) {
    TaskCell* cell = acquire_cell();
    cell->emplace(std::forward<F>(fn));
    stamp_cell(cell);
    exclusive_submitted_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target = resolve_shard(shard);
    push_exclusive(cell, target);
    signal_work(target, 1);
  }

  /// Reserve `n` units of blocking capacity (one unit ≈ one worker that may
  /// sit in a blocked/poll-waiting frame). Fails — without blocking — once
  /// the total outstanding reservation would exceed worker_count(); the
  /// caller then falls back to spawning its own threads. Pairs with
  /// release_capacity().
  [[nodiscard]] bool try_reserve_capacity(std::size_t n) noexcept;
  void release_capacity(std::size_t n) noexcept;
  /// Currently reserved blocking capacity (tests/stats only).
  [[nodiscard]] std::size_t reserved_capacity() const noexcept {
    return reserved_.load(std::memory_order_acquire);
  }

  /// Run one pending job on the calling thread, if any is available.
  /// Returns false when nothing was found. Safe from any thread. Never runs
  /// exclusive jobs (see submit_exclusive).
  bool try_run_one();

  /// Cooperatively wait: run pending jobs while `keep_waiting()` is true.
  /// The calling thread (worker or external) donates itself to the pool for
  /// the duration, so waiting can never starve the pool. Templated on the
  /// predicate so hot join loops (Barrier arrivals, JoinLatch waits) pay no
  /// std::function wrap per wait.
  template <typename Pred>
  void help_while(Pred&& keep_waiting) {
    // Spin → yield → doubling sleep: nothing runnable means the condition
    // is waiting on a job executing elsewhere; escalate instead of burning
    // a core on oversubscribed hosts, and restart cheap after each helped
    // job.
    ExponentialBackoff backoff(/*spins_before_yield=*/64,
                               /*yields_before_sleep=*/32);
    while (keep_waiting()) {
      if (try_run_one()) {
        helped_.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          // A waiter productively drained a job instead of blocking: the
          // completion core's "help" leg, visible next to kWaiterPark/Wake.
          obs::emit(obs::EventKind::kWaiterHelp, 0, 0);
        }
        backoff.reset();
        continue;
      }
      backoff.pause();
    }
  }

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Number of locality domains (Config::shards after clamping).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Home shard of worker `worker` (workers are partitioned into contiguous
  /// blocks: shard s owns [s*W/S, (s+1)*W/S)).
  [[nodiscard]] std::size_t shard_of_worker(std::size_t worker) const {
    return worker_shard_.at(worker);
  }

  /// Pool that the calling thread belongs to, or nullptr.
  [[nodiscard]] static WorkStealingPool* current_pool() noexcept;
  /// Worker index of the calling thread within its pool, or -1.
  [[nodiscard]] static int current_worker() noexcept;

  /// Per-worker pinning hook (the pj places binding): route this thread's
  /// future un-shard-named injections (and exclusive submissions) to
  /// `shard`, taken modulo each pool's shard count at use. kAnyShard
  /// clears. A process-wide thread property, not per-pool: a thread binds
  /// to one locality domain at a time.
  static void bind_thread_to_shard(std::size_t shard) noexcept;
  /// The calling thread's bound shard, or kAnyShard when unbound.
  [[nodiscard]] static std::size_t thread_bound_shard() noexcept;

  /// Shard the calling thread submits to by default: a worker's home shard,
  /// a bound thread's binding (mod shard_count), else kAnyShard.
  [[nodiscard]] std::size_t current_shard() const noexcept;

  [[nodiscard]] Stats stats() const;

  /// Approximate number of queued-but-unstarted jobs (stats/tests only).
  [[nodiscard]] std::size_t pending_approx() const;

 private:
  /// Per-worker state, cache-line padded so one worker's deque activity and
  /// stat counters never false-share with a neighbour's.
  struct alignas(kCacheLineSize) Worker {
    explicit Worker(std::uint64_t seed) : rng(seed) {}
    ChaseLevDeque<TaskCell> deque;
    Rng rng;
    std::uint32_t shard = 0;  ///< home shard index (set once at pool start)
    // Stat counters are written by the owning worker and read by stats()
    // from arbitrary threads: relaxed atomics (counts, not synchronisation).
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> stolen_cross{0};  ///< victim in another shard
    std::atomic<std::uint64_t> cross_probes{0};  ///< sweeps gone remote
    std::atomic<std::uint64_t> parked{0};
    std::atomic<std::uint64_t> steal_fails{0};
    std::atomic<std::uint64_t> deque_hw{0};  ///< sampled only while tracing
    // Continuation-stealing outcomes on this worker (SubmitHint::local).
    std::atomic<std::uint64_t> cont_local{0};
    std::atomic<std::uint64_t> overflowed{0};
    // Owner-only cell freelist, chained through TaskCell::next.
    TaskCell* free_head = nullptr;
    std::size_t free_count = 0;
  };

  /// One locality domain: its injection/exclusive queues and park list.
  /// Cache-line padded so one shard's submission traffic never false-shares
  /// with a neighbour domain's.
  struct alignas(kCacheLineSize) Shard {
    // Lock-free producers; consumers serialise via the try-lock (failing it
    // means "someone else is draining — go steal instead").
    MpscIntrusiveQueue<TaskCell> injected;
    alignas(kCacheLineSize) std::atomic_flag inject_pop_lock{};
    // Exclusive jobs bound (softly) to this domain: drained only by
    // worker_loop frames, own-shard workers first.
    MpscIntrusiveQueue<TaskCell> exclusive;
    alignas(kCacheLineSize) std::atomic_flag exclusive_pop_lock{};
    // Park list: the per-shard wakeup protocol state (see header comment).
    std::mutex park_mutex;
    std::condition_variable park_cv;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> work_epoch{0};
    alignas(kCacheLineSize) std::atomic<int> sleepers{0};
    std::atomic<std::uint64_t> injected_hw{0};  ///< sampled while tracing
    std::size_t first_worker = 0;  ///< contiguous worker block [first, first+n)
    std::size_t num_workers = 0;
  };

  /// Give the freshly emplaced job an obs trace id and record its enqueue.
  /// One relaxed load + predicted-untaken branch when no session is live;
  /// compiles to the plain `trace_id = 0` store at PARC_TRACE=OFF.
  void stamp_cell(TaskCell* cell) noexcept {
    if (obs::tracing()) [[unlikely]] {
      cell->trace_id = obs::next_id();
      obs::emit(obs::EventKind::kJobEnqueue, cell->trace_id, 0);
    } else {
      cell->trace_id = 0;
    }
  }

  void worker_loop(std::size_t index);
  TaskCell* find_worker_job(std::size_t index);
  TaskCell* find_job(std::size_t self_or_npos);
  TaskCell* pop_exclusive(std::size_t shard);
  TaskCell* pop_exclusive_any(std::size_t home_shard);
  [[nodiscard]] bool any_exclusive_pending() const noexcept;
  TaskCell* steal_within_shard(std::size_t self, Rng& rng);
  TaskCell* steal_remote_shards(std::size_t self);
  void signal_work(std::size_t shard, std::size_t jobs);
  void run_cell(TaskCell* cell);

  // Cell recycling (see task_cell.hpp for the lifecycle).
  TaskCell* acquire_cell();
  void release_cell(TaskCell* cell);
  void refill_freelist(Worker& w);
  /// Places the cell per hint/shard; returns the shard whose park list must
  /// be signalled.
  std::size_t enqueue_cell(TaskCell* cell, SubmitHint hint, std::size_t shard);
  void push_injected(TaskCell* cell, std::size_t shard);
  void push_exclusive(TaskCell* cell, std::size_t shard);
  TaskCell* pop_injected(std::size_t shard);
  /// Map a caller-supplied shard id (or kAnyShard) to a concrete shard.
  [[nodiscard]] std::size_t resolve_shard(std::size_t requested) const;

  Config cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> worker_shard_;  ///< worker index → shard index
  std::vector<std::thread> threads_;

  /// Outstanding blocking-capacity reservation (≤ worker_count()).
  alignas(kCacheLineSize) std::atomic<std::size_t> reserved_{0};

  // Slab arena backing the recycled cells. The mutex guards slab creation
  // only (rare); cross-thread cell returns go through the lock-free
  // `arena_free_` Treiber stack, drained wholesale by refill_freelist.
  std::mutex arena_mutex_;
  std::vector<std::unique_ptr<TaskCell[]>> slabs_;  // guarded by arena_mutex_
  alignas(kCacheLineSize) std::atomic<TaskCell*> arena_free_{nullptr};

  alignas(kCacheLineSize) std::atomic<bool> stop_{false};

  alignas(kCacheLineSize) std::atomic<std::uint64_t> helped_{0};
  /// SubmitHint::local from a thread that is not one of this pool's workers
  /// (EDT, main thread, cross-pool completers): written from arbitrary
  /// threads, hence pool-level rather than per-worker.
  std::atomic<std::uint64_t> cont_inject_fallback_{0};
  std::atomic<std::uint64_t> exclusive_submitted_{0};
  std::atomic<std::uint64_t> reserve_granted_{0};
  std::atomic<std::uint64_t> reserve_denied_{0};
  /// Fallback wakes: submissions that found their target shard sleeper-free
  /// and woke a parked worker of another shard instead.
  std::atomic<std::uint64_t> cross_shard_wakes_{0};

  // For external (non-worker) threads taking jobs: rotate steal start.
  alignas(kCacheLineSize) std::atomic<std::size_t> external_cursor_{0};
};

// TaskLatch moved to sched/task_graph.hpp, where it wraps the shared
// JoinLatch from the completion core.

}  // namespace parc::sched
