// Work-stealing thread pool: the execution engine under both the
// ParallelTask runtime (parc::ptask) and the Pyjama runtime (parc::pj).
//
// Design (all per C++ Core Guidelines CP rules):
//  - one Chase–Lev deque per worker; a worker pushes spawned jobs to its own
//    deque and pops LIFO (work-first, good locality), thieves steal FIFO;
//  - jobs live in recyclable small-buffer TaskCells (task_cell.hpp) drawn
//    from per-worker freelists backed by slabs: a worker-local submit of a
//    small capture performs zero heap allocations;
//  - a lock-free Vyukov MPSC queue for jobs submitted from non-worker
//    threads (the main thread, the GUI event thread); consumers serialise
//    with a try-lock so a failed local pop never blocks on a mutex;
//  - submission is locality-hinted (SubmitHint): newly-ready continuations
//    and dependence-released tasks completed on a worker are pushed onto
//    that worker's own deque tail (continuation stealing — cache-hot,
//    LIFO-next, steal-able by idle siblings), with a counted fallback to
//    injection for non-worker completers and a soft-cap overflow so a deep
//    local backlog stays visible to thieves;
//  - workers park on a condition variable when repeated steal sweeps fail;
//    bulk submissions (submit_bulk / submit_n) bump the epoch and notify
//    once per batch, not once per job;
//  - blocking waits never block a worker thread: waiters call help_while(),
//    executing pending jobs until their condition holds. This is what makes
//    nested task waits (recursive quicksort!) and the project-6 "task-safe"
//    collections deadlock-free on a bounded pool;
//  - threads are joined in the destructor (never detached, CP.26).
//
// Wakeup ordering contract (signal_work / park): a submitter fully
// publishes the job (deque push or completed MPSC link), then increments
// `work_epoch_` (release) and, only if `sleepers_ > 0`, takes `park_mutex_`
// and notifies. A parking worker snapshots the epoch, re-scans every queue,
// and then waits on the CV with the predicate `epoch != snapshot`. Any
// submission that the re-scan could have missed must have bumped the epoch
// after the snapshot, so the predicate is already true and the wait returns
// immediately; the `sleepers_ > 0` fast path is safe because `sleepers_` is
// incremented under `park_mutex_` before the CV wait re-checks the
// predicate under that same mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/mpsc_queue.hpp"
#include "sched/task_cell.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace parc::sched {

/// Number of workers to use when the caller does not say: the hardware
/// concurrency, but at least 2 so that parallel semantics are exercised even
/// on single-core containers like CI runners.
[[nodiscard]] std::size_t default_concurrency() noexcept;

/// Locality hint for the submission surface: where a job should land
/// relative to the submitting thread. Every submit/submit_bulk/submit_n
/// overload takes one; the unhinted spellings forward `auto_`.
enum class SubmitHint : std::uint8_t {
  /// Resolve at submit time: the caller's own deque when the caller is a
  /// worker of this pool, the injection queue otherwise. The right default
  /// for fresh spawns.
  auto_,
  /// Continuation hand-off: the job is newly-ready dependent work whose
  /// inputs are hot in the submitting worker's cache, so it belongs on that
  /// worker's deque tail (LIFO-next, steal-able by idle siblings). From a
  /// non-worker thread this falls back to injection (counted, so traces
  /// show where dependent work actually ran); on a worker whose deque is
  /// past Config::local_queue_soft_cap it overflows to injection to keep
  /// ready work visible to thieves that only probe the MPSC queue.
  local,
  /// Force the injection queue even from a worker: FIFO-fair work that
  /// should not shadow the worker's own LIFO stack (e.g. bench harnesses
  /// isolating the wakeup path).
  remote,
};

class WorkStealingPool {
 public:
  struct Config {
    std::size_t num_threads = default_concurrency();
    /// Steal sweeps over all victims before a worker parks.
    std::size_t sweeps_before_park = 4;
    std::string name = "parc";
    /// SubmitHint::local pushes overflow to the injection queue once the
    /// submitter's own deque holds this many jobs (the Chase–Lev deque
    /// itself grows without bound; the cap is a visibility/fairness policy,
    /// not a capacity limit). Checked only on the hinted-local path.
    std::size_t local_queue_soft_cap = 4096;
  };

  struct Stats {
    std::uint64_t executed = 0;     ///< jobs run to completion
    std::uint64_t stolen = 0;       ///< jobs obtained by stealing
    std::uint64_t parked = 0;       ///< times a worker went to sleep
    std::uint64_t helped = 0;       ///< jobs run inside help_while()
    std::uint64_t steal_fails = 0;  ///< worker sweeps that found no job
    /// Queue-depth high-water marks. Sampled on the enqueue path only while
    /// an obs trace session is live (the sample costs a size_approx, which
    /// the idle fast path must not pay); 0 if never traced.
    std::uint64_t deque_high_water = 0;     ///< max local deque depth
    std::uint64_t injected_high_water = 0;  ///< max injection queue depth
    // Continuation-stealing hand-off outcomes (SubmitHint::local).
    std::uint64_t continuation_local_pushed = 0;   ///< landed on own deque
    std::uint64_t continuation_inject_fallback = 0;  ///< non-worker submitter
    std::uint64_t deque_overflows = 0;  ///< soft cap hit, spilled to inject
    // Exclusive-job / capacity-reservation outcomes (nested pj regions).
    std::uint64_t exclusive_submitted = 0;     ///< jobs via submit_exclusive
    std::uint64_t reservations_granted = 0;    ///< try_reserve_capacity ok
    std::uint64_t reservations_denied = 0;     ///< pool saturated
  };

  WorkStealingPool() : WorkStealingPool(Config{}) {}
  explicit WorkStealingPool(Config cfg);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a job. Placement follows `hint` (see SubmitHint): a worker
  /// submitting to its own pool lands on its local deque (allocation-free
  /// for captures up to TaskCell::kInlineBytes), any other thread goes to
  /// the lock-free injection queue.
  template <typename F>
  void submit(F&& fn, SubmitHint hint) {
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      PARC_CHECK(static_cast<bool>(fn));
    }
    TaskCell* cell = acquire_cell();
    cell->emplace(std::forward<F>(fn));
    stamp_cell(cell);
    enqueue_cell(cell, hint);
    signal_work(1);
  }

  /// Unhinted legacy spelling: forwards SubmitHint::auto_.
  template <typename F>
  void submit(F&& fn) {
    submit(std::forward<F>(fn), SubmitHint::auto_);
  }

  /// Enqueue a batch of jobs (moved from), waking workers once for the
  /// whole batch instead of once per job. Used by the runtimes' chunked
  /// fan-out (ptask::run_multi).
  template <typename F>
  void submit_bulk(std::span<F> fns, SubmitHint hint) {
    if (fns.empty()) return;
    for (F& fn : fns) {
      TaskCell* cell = acquire_cell();
      cell->emplace(std::move(fn));
      stamp_cell(cell);
      enqueue_cell(cell, hint);
    }
    signal_work(fns.size());
  }

  /// Unhinted legacy spelling: forwards SubmitHint::auto_.
  template <typename F>
  void submit_bulk(std::span<F> fns) {
    submit_bulk(fns, SubmitHint::auto_);
  }

  /// Enqueue `count` jobs produced by `factory(i)` for i in [0, count) —
  /// the no-intermediate-storage spelling of submit_bulk for generated
  /// closures. One wakeup for the whole batch.
  template <typename Factory>
  void submit_n(std::size_t count, Factory&& factory, SubmitHint hint) {
    if (count == 0) return;
    for (std::size_t i = 0; i < count; ++i) {
      TaskCell* cell = acquire_cell();
      cell->emplace(factory(i));
      stamp_cell(cell);
      enqueue_cell(cell, hint);
    }
    signal_work(count);
  }

  /// Unhinted legacy spelling: forwards SubmitHint::auto_.
  template <typename Factory>
  void submit_n(std::size_t count, Factory&& factory) {
    submit_n(count, std::forward<Factory>(factory), SubmitHint::auto_);
  }

  /// Enqueue a job that may *block its worker for long stretches* — a team
  /// member body parking or poll-waiting at region barriers. Exclusive jobs
  /// are taken only by workers at the top of their loop, never by
  /// try_run_one()/help_while(): a waiter that helps can have a blocked
  /// frame buried under it on the same stack, and running a member job
  /// there would let that member's barrier wait on the very frame it is
  /// sitting on (deadlock). Giving each member a fresh top-level worker
  /// frame makes member-to-member waits acyclic.
  ///
  /// Callers must bound in-flight exclusive jobs with
  /// try_reserve_capacity() first — exclusive jobs cannot be helped, so
  /// without a reservation more members than workers would wait forever.
  template <typename F>
  void submit_exclusive(F&& fn) {
    TaskCell* cell = acquire_cell();
    cell->emplace(std::forward<F>(fn));
    stamp_cell(cell);
    exclusive_submitted_.fetch_add(1, std::memory_order_relaxed);
    exclusive_.push(cell);
    signal_work(1);
  }

  /// Reserve `n` units of blocking capacity (one unit ≈ one worker that may
  /// sit in a blocked/poll-waiting frame). Fails — without blocking — once
  /// the total outstanding reservation would exceed worker_count(); the
  /// caller then falls back to spawning its own threads. Pairs with
  /// release_capacity().
  [[nodiscard]] bool try_reserve_capacity(std::size_t n) noexcept;
  void release_capacity(std::size_t n) noexcept;
  /// Currently reserved blocking capacity (tests/stats only).
  [[nodiscard]] std::size_t reserved_capacity() const noexcept {
    return reserved_.load(std::memory_order_acquire);
  }

  /// Run one pending job on the calling thread, if any is available.
  /// Returns false when nothing was found. Safe from any thread. Never runs
  /// exclusive jobs (see submit_exclusive).
  bool try_run_one();

  /// Cooperatively wait: run pending jobs while `keep_waiting()` is true.
  /// The calling thread (worker or external) donates itself to the pool for
  /// the duration, so waiting can never starve the pool. Templated on the
  /// predicate so hot join loops (Barrier arrivals, JoinLatch waits) pay no
  /// std::function wrap per wait.
  template <typename Pred>
  void help_while(Pred&& keep_waiting) {
    // Spin → yield → doubling sleep: nothing runnable means the condition
    // is waiting on a job executing elsewhere; escalate instead of burning
    // a core on oversubscribed hosts, and restart cheap after each helped
    // job.
    ExponentialBackoff backoff(/*spins_before_yield=*/64,
                               /*yields_before_sleep=*/32);
    while (keep_waiting()) {
      if (try_run_one()) {
        helped_.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          // A waiter productively drained a job instead of blocking: the
          // completion core's "help" leg, visible next to kWaiterPark/Wake.
          obs::emit(obs::EventKind::kWaiterHelp, 0, 0);
        }
        backoff.reset();
        continue;
      }
      backoff.pause();
    }
  }

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Pool that the calling thread belongs to, or nullptr.
  [[nodiscard]] static WorkStealingPool* current_pool() noexcept;
  /// Worker index of the calling thread within its pool, or -1.
  [[nodiscard]] static int current_worker() noexcept;

  [[nodiscard]] Stats stats() const;

  /// Approximate number of queued-but-unstarted jobs (stats/tests only).
  [[nodiscard]] std::size_t pending_approx() const;

 private:
  /// Per-worker state, cache-line padded so one worker's deque activity and
  /// stat counters never false-share with a neighbour's.
  struct alignas(kCacheLineSize) Worker {
    explicit Worker(std::uint64_t seed) : rng(seed) {}
    ChaseLevDeque<TaskCell> deque;
    Rng rng;
    // Stat counters are written by the owning worker and read by stats()
    // from arbitrary threads: relaxed atomics (counts, not synchronisation).
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> parked{0};
    std::atomic<std::uint64_t> steal_fails{0};
    std::atomic<std::uint64_t> deque_hw{0};  ///< sampled only while tracing
    // Continuation-stealing outcomes on this worker (SubmitHint::local).
    std::atomic<std::uint64_t> cont_local{0};
    std::atomic<std::uint64_t> overflowed{0};
    // Owner-only cell freelist, chained through TaskCell::next.
    TaskCell* free_head = nullptr;
    std::size_t free_count = 0;
  };

  /// Give the freshly emplaced job an obs trace id and record its enqueue.
  /// One relaxed load + predicted-untaken branch when no session is live;
  /// compiles to the plain `trace_id = 0` store at PARC_TRACE=OFF.
  void stamp_cell(TaskCell* cell) noexcept {
    if (obs::tracing()) [[unlikely]] {
      cell->trace_id = obs::next_id();
      obs::emit(obs::EventKind::kJobEnqueue, cell->trace_id, 0);
    } else {
      cell->trace_id = 0;
    }
  }

  void worker_loop(std::size_t index);
  TaskCell* find_worker_job(std::size_t index);
  TaskCell* find_job(std::size_t self_or_npos);
  TaskCell* pop_exclusive();
  TaskCell* steal_from_others(std::size_t self_or_npos, Rng& rng);
  TaskCell* pop_injected();
  void signal_work(std::size_t jobs);
  void run_cell(TaskCell* cell);

  // Cell recycling (see task_cell.hpp for the lifecycle).
  TaskCell* acquire_cell();
  void release_cell(TaskCell* cell);
  void refill_freelist(Worker& w);
  void enqueue_cell(TaskCell* cell, SubmitHint hint);
  void push_injected(TaskCell* cell);

  Config cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // External-submission path: lock-free producers; consumers serialise via
  // the try-lock below (failing it means "someone else is draining — go
  // steal instead"), so no pop ever blocks.
  MpscIntrusiveQueue<TaskCell> injected_;
  alignas(kCacheLineSize) std::atomic_flag inject_pop_lock_{};

  // Exclusive jobs (submit_exclusive): drained only by worker_loop, so a
  // member job always starts on a fresh top-level worker frame. Same
  // lock-free MPSC + try-lock consumer discipline as `injected_`.
  MpscIntrusiveQueue<TaskCell> exclusive_;
  alignas(kCacheLineSize) std::atomic_flag exclusive_pop_lock_{};
  /// Outstanding blocking-capacity reservation (≤ worker_count()).
  alignas(kCacheLineSize) std::atomic<std::size_t> reserved_{0};

  // Slab arena backing the recycled cells. The mutex guards slab creation
  // only (rare); cross-thread cell returns go through the lock-free
  // `arena_free_` Treiber stack, drained wholesale by refill_freelist.
  std::mutex arena_mutex_;
  std::vector<std::unique_ptr<TaskCell[]>> slabs_;  // guarded by arena_mutex_
  alignas(kCacheLineSize) std::atomic<TaskCell*> arena_free_{nullptr};

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> work_epoch_{0};
  alignas(kCacheLineSize) std::atomic<int> sleepers_{0};
  alignas(kCacheLineSize) std::atomic<bool> stop_{false};

  alignas(kCacheLineSize) std::atomic<std::uint64_t> helped_{0};
  std::atomic<std::uint64_t> injected_hw_{0};  ///< sampled only while tracing
  /// SubmitHint::local from a thread that is not one of this pool's workers
  /// (EDT, main thread, cross-pool completers): written from arbitrary
  /// threads, hence pool-level rather than per-worker.
  std::atomic<std::uint64_t> cont_inject_fallback_{0};
  std::atomic<std::uint64_t> exclusive_submitted_{0};
  std::atomic<std::uint64_t> reserve_granted_{0};
  std::atomic<std::uint64_t> reserve_denied_{0};

  // For external (non-worker) threads taking jobs: rotate steal start.
  alignas(kCacheLineSize) std::atomic<std::size_t> external_cursor_{0};
};

// TaskLatch moved to sched/task_graph.hpp, where it wraps the shared
// JoinLatch from the completion core.

}  // namespace parc::sched
