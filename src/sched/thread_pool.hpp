// Work-stealing thread pool: the execution engine under both the
// ParallelTask runtime (parc::ptask) and the Pyjama runtime (parc::pj).
//
// Design (all per C++ Core Guidelines CP rules):
//  - one Chase–Lev deque per worker; a worker pushes spawned jobs to its own
//    deque and pops LIFO (work-first, good locality), thieves steal FIFO;
//  - a mutex-protected injection queue for jobs submitted from non-worker
//    threads (the main thread, the GUI event thread);
//  - workers park on a condition variable when repeated steal sweeps fail;
//    every enqueue bumps an epoch and notifies under the same mutex, so
//    wake-ups cannot be missed;
//  - blocking waits never block a worker thread: waiters call help_while(),
//    executing pending jobs until their condition holds. This is what makes
//    nested task waits (recursive quicksort!) and the project-6 "task-safe"
//    collections deadlock-free on a bounded pool;
//  - threads are joined in the destructor (never detached, CP.26).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sched/chase_lev_deque.hpp"
#include "support/rng.hpp"

namespace parc::sched {

/// Number of workers to use when the caller does not say: the hardware
/// concurrency, but at least 2 so that parallel semantics are exercised even
/// on single-core containers like CI runners.
[[nodiscard]] std::size_t default_concurrency() noexcept;

class WorkStealingPool {
 public:
  struct Config {
    std::size_t num_threads = default_concurrency();
    /// Steal sweeps over all victims before a worker parks.
    std::size_t sweeps_before_park = 4;
    std::string name = "parc";
  };

  struct Stats {
    std::uint64_t executed = 0;   ///< jobs run to completion
    std::uint64_t stolen = 0;     ///< jobs obtained by stealing
    std::uint64_t parked = 0;     ///< times a worker went to sleep
    std::uint64_t helped = 0;     ///< jobs run inside help_while()
  };

  WorkStealingPool() : WorkStealingPool(Config{}) {}
  explicit WorkStealingPool(Config cfg);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a job. Called from worker threads (goes to the local deque) or
  /// any other thread (goes to the injection queue).
  void submit(std::function<void()> fn);

  /// Run one pending job on the calling thread, if any is available.
  /// Returns false when nothing was found. Safe from any thread.
  bool try_run_one();

  /// Cooperatively wait: run pending jobs while `keep_waiting()` is true.
  /// The calling thread (worker or external) donates itself to the pool for
  /// the duration, so waiting can never starve the pool.
  void help_while(const std::function<bool()>& keep_waiting);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Pool that the calling thread belongs to, or nullptr.
  [[nodiscard]] static WorkStealingPool* current_pool() noexcept;
  /// Worker index of the calling thread within its pool, or -1.
  [[nodiscard]] static int current_worker() noexcept;

  [[nodiscard]] Stats stats() const;

  /// Approximate number of queued-but-unstarted jobs (stats/tests only).
  [[nodiscard]] std::size_t pending_approx() const;

 private:
  struct Job {
    std::function<void()> fn;
  };

  struct Worker {
    explicit Worker(std::uint64_t seed) : rng(seed) {}
    ChaseLevDeque<Job> deque;
    Rng rng;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t parked = 0;
  };

  void worker_loop(std::size_t index);
  Job* find_job(std::size_t self_or_npos);
  Job* steal_from_others(std::size_t self_or_npos, Rng& rng);
  Job* pop_injected();
  void signal_work();
  void run_job(Job* job);

  Config cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex inject_mutex_;
  std::deque<Job*> injected_;  // guarded by inject_mutex_

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> helped_{0};

  // For external (non-worker) threads taking jobs: rotate steal start.
  std::atomic<std::size_t> external_cursor_{0};
};

/// A count-up/count-down completion latch that waits by helping the pool.
/// Used by runtimes to implement join points (taskgroup / parallel-for end).
class TaskLatch {
 public:
  explicit TaskLatch(WorkStealingPool& pool) : pool_(pool) {}

  void add(std::size_t n = 1) noexcept {
    outstanding_.fetch_add(n, std::memory_order_relaxed);
  }
  void done() noexcept {
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
  [[nodiscard]] bool idle() const noexcept {
    return outstanding_.load(std::memory_order_acquire) == 0;
  }
  /// Blocks (cooperatively) until the count returns to zero.
  void wait() {
    pool_.help_while([this] { return !idle(); });
  }

 private:
  WorkStealingPool& pool_;
  std::atomic<std::size_t> outstanding_{0};
};

}  // namespace parc::sched
