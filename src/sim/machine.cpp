#include "sim/machine.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace parc::sim {

TaskDag::NodeId TaskDag::add_task(double cost,
                                  const std::vector<NodeId>& deps) {
  PARC_CHECK(cost >= 0.0);
  const NodeId id = costs_.size();
  costs_.push_back(cost);
  dependents_.emplace_back();
  dep_counts_.push_back(deps.size());
  total_work_ += cost;
  for (NodeId d : deps) {
    PARC_CHECK_MSG(d < id, "dependences must be added before dependents");
    dependents_[d].push_back(id);
  }
  return id;
}

double TaskDag::critical_path() const {
  // Nodes are topologically ordered by construction.
  std::vector<double> finish(costs_.size(), 0.0);
  double span = 0.0;
  for (NodeId id = 0; id < costs_.size(); ++id) {
    finish[id] += costs_[id];
    span = std::max(span, finish[id]);
    for (NodeId child : dependents_[id]) {
      finish[child] = std::max(finish[child], finish[id]);
    }
  }
  return span;
}

// Per-task overheads for the paper machines model the JVM tasking runtimes
// (ParaTask / Pyjama) on 2011-era hardware: microseconds per task, dominated
// by allocation + contended queue handoff. bench_sched_overhead bounds the
// same costs for this repo's native scheduler (see EXPERIMENTS.md,
// "Scheduler overhead"): ~0.04 us worker-local, ~0.1 us cross-thread, ~7 us
// when a parked worker must be woken — so 1.5–2 us is the right order for
// a JVM runtime whose every spawn allocates and crosses a lock.
MachineParams parc_64core() {
  return MachineParams{64, 2e-6, "PARC 64-core (4x Opteron 6272)"};
}
MachineParams parc_16core() {
  return MachineParams{16, 1.5e-6, "PARC 16-core (4x Xeon E7340)"};
}
MachineParams parc_8core() {
  return MachineParams{8, 1.5e-6, "PARC 8-core (2x Xeon E5320)"};
}
MachineParams parc_host() {
  // Measured by bench_sched_overhead on the CI container: 0.10 us amortised
  // external submit (the pessimistic path; worker-local is 0.04 us).
  return MachineParams{1, 1e-7, "CI container (native TaskCell scheduler)"};
}

SimOutcome simulate(const TaskDag& dag, const MachineParams& machine) {
  PARC_CHECK(machine.cores >= 1);
  SimOutcome out;
  out.core_busy_s.assign(machine.cores, 0.0);
  if (dag.size() == 0) return out;

  // Ready tasks keyed by the time they become ready; FIFO within a time.
  struct ReadyTask {
    double ready_at;
    std::size_t seq;
    TaskDag::NodeId id;
    bool operator>(const ReadyTask& o) const {
      if (ready_at != o.ready_at) return ready_at > o.ready_at;
      return seq > o.seq;
    }
  };
  std::priority_queue<ReadyTask, std::vector<ReadyTask>, std::greater<>>
      ready;
  // Cores keyed by free time; index breaks ties deterministically.
  struct Core {
    double free_at;
    std::size_t index;
    bool operator>(const Core& o) const {
      if (free_at != o.free_at) return free_at > o.free_at;
      return index > o.index;
    }
  };
  std::priority_queue<Core, std::vector<Core>, std::greater<>> cores;
  for (std::size_t c = 0; c < machine.cores; ++c) cores.push(Core{0.0, c});

  std::vector<std::size_t> pending(dag.size());
  std::vector<double> ready_time(dag.size(), 0.0);
  std::size_t seq = 0;
  for (TaskDag::NodeId id = 0; id < dag.size(); ++id) {
    pending[id] = dag.dependency_count(id);
    if (pending[id] == 0) ready.push(ReadyTask{0.0, seq++, id});
  }

  double makespan = 0.0;
  while (!ready.empty()) {
    const ReadyTask task = ready.top();
    ready.pop();
    Core core = cores.top();
    cores.pop();
    const double start = std::max(task.ready_at, core.free_at);
    const double finish =
        start + dag.cost(task.id) + machine.per_task_overhead_s;
    out.core_busy_s[core.index] += finish - start;
    core.free_at = finish;
    cores.push(core);
    makespan = std::max(makespan, finish);
    for (TaskDag::NodeId child : dag.dependents(task.id)) {
      ready_time[child] = std::max(ready_time[child], finish);
      if (--pending[child] == 0) {
        ready.push(ReadyTask{ready_time[child], seq++, child});
      }
    }
  }

  out.makespan_s = makespan;
  out.speedup = makespan > 0.0 ? dag.total_work() / makespan : 0.0;
  out.efficiency = out.speedup / static_cast<double>(machine.cores);
  return out;
}

std::vector<SpeedupPoint> speedup_curve(
    const TaskDag& dag, const std::vector<std::size_t>& core_counts,
    double per_task_overhead_s) {
  std::vector<SpeedupPoint> curve;
  curve.reserve(core_counts.size());
  for (std::size_t p : core_counts) {
    const auto outcome =
        simulate(dag, MachineParams{p, per_task_overhead_s, "sweep"});
    curve.push_back(SpeedupPoint{p, outcome.speedup, outcome.efficiency});
  }
  return curve;
}

TaskDag fork_join_dag(const std::vector<double>& costs) {
  TaskDag dag;
  for (double c : costs) dag.add_task(c);
  return dag;
}

TaskDag divide_conquer_dag(std::size_t elements, std::size_t cutoff,
                           double cost_per_element, double spawn_overhead_s) {
  PARC_CHECK(cutoff >= 1);
  TaskDag dag;
  // Recursive expansion mirroring quicksort: a partition node costs
  // O(elements) (the partition pass), then two halves proceed in parallel.
  auto build = [&](auto&& self, std::size_t elems,
                   const std::vector<TaskDag::NodeId>& deps)
      -> TaskDag::NodeId {
    if (elems <= cutoff) {
      // Leaf: sort the run sequentially, n log n-ish ≈ linear for model.
      return dag.add_task(cost_per_element * static_cast<double>(elems), deps);
    }
    const auto partition = dag.add_task(
        cost_per_element * static_cast<double>(elems) + spawn_overhead_s,
        deps);
    const auto left = self(self, elems / 2, {partition});
    const auto right = self(self, elems - elems / 2, {partition});
    // Join node (zero cost) so callers can depend on the subtree finishing.
    return dag.add_task(0.0, {left, right});
  };
  build(build, elements, {});
  return dag;
}

TaskDag barrier_rounds_dag(std::size_t iters, std::size_t tasks_per_round,
                           double task_cost_s) {
  TaskDag dag;
  std::vector<TaskDag::NodeId> previous;
  for (std::size_t round = 0; round < iters; ++round) {
    std::vector<TaskDag::NodeId> current;
    current.reserve(tasks_per_round);
    for (std::size_t t = 0; t < tasks_per_round; ++t) {
      current.push_back(dag.add_task(task_cost_s, previous));
    }
    previous = std::move(current);
  }
  return dag;
}

TaskDag amdahl_dag(double serial_s, std::size_t parallel_tasks,
                   double parallel_each_s) {
  TaskDag dag;
  const auto serial = dag.add_task(serial_s);
  for (std::size_t i = 0; i < parallel_tasks; ++i) {
    dag.add_task(parallel_each_s, {serial});
  }
  return dag;
}

}  // namespace parc::sim
