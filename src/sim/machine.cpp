#include "sim/machine.hpp"

#include <algorithm>
#include <deque>
#include <queue>

namespace parc::sim {

TaskDag::NodeId TaskDag::add_task(double cost,
                                  const std::vector<NodeId>& deps) {
  PARC_CHECK(cost >= 0.0);
  const NodeId id = costs_.size();
  costs_.push_back(cost);
  dependents_.emplace_back();
  dep_counts_.push_back(deps.size());
  total_work_ += cost;
  for (NodeId d : deps) {
    PARC_CHECK_MSG(d < id, "dependences must be added before dependents");
    dependents_[d].push_back(id);
  }
  return id;
}

double TaskDag::critical_path() const {
  // Nodes are topologically ordered by construction.
  std::vector<double> finish(costs_.size(), 0.0);
  double span = 0.0;
  for (NodeId id = 0; id < costs_.size(); ++id) {
    finish[id] += costs_[id];
    span = std::max(span, finish[id]);
    for (NodeId child : dependents_[id]) {
      finish[child] = std::max(finish[child], finish[id]);
    }
  }
  return span;
}

// Per-task overheads for the paper machines model the JVM tasking runtimes
// (ParaTask / Pyjama) on 2011-era hardware: microseconds per task, dominated
// by allocation + contended queue handoff. bench_sched_overhead bounds the
// same costs for this repo's native scheduler (see EXPERIMENTS.md,
// "Scheduler overhead"): ~0.04 us worker-local, ~0.1 us cross-thread, ~7 us
// when a parked worker must be woken — so 1.5–2 us is the right order for
// a JVM runtime whose every spawn allocates and crosses a lock.
MachineParams parc_64core() {
  return MachineParams{64, 2e-6, "PARC 64-core (4x Opteron 6272)"};
}
MachineParams parc_16core() {
  return MachineParams{16, 1.5e-6, "PARC 16-core (4x Xeon E7340)"};
}
MachineParams parc_8core() {
  return MachineParams{8, 1.5e-6, "PARC 8-core (2x Xeon E5320)"};
}
MachineParams parc_host() {
  // Measured by bench_sched_overhead on the CI container: 0.10 us amortised
  // external submit (the pessimistic path; worker-local is 0.04 us).
  return MachineParams{1, 1e-7, "CI container (native TaskCell scheduler)"};
}

SimOutcome simulate(const TaskDag& dag, const MachineParams& machine) {
  PARC_CHECK(machine.cores >= 1);
  SimOutcome out;
  out.core_busy_s.assign(machine.cores, 0.0);
  if (machine.record_task_finish) out.task_finish_s.assign(dag.size(), 0.0);
  if (dag.size() == 0) return out;

  // Cores are partitioned into contiguous locality domains exactly like the
  // real pool's workers (shard s owns [s*C/S, (s+1)*C/S)). At nshards == 1
  // every branch below degenerates to the classic flat greedy scheduler:
  // earliest-free core, tie broken by index.
  const std::size_t nshards =
      std::max<std::size_t>(std::min(machine.shards, machine.cores), 1);
  const auto shard_of_core = [&](std::size_t c) {
    return c * nshards / machine.cores;
  };

  // Ready tasks keyed by the time they become ready; FIFO within a time.
  struct ReadyTask {
    double ready_at;
    std::size_t seq;
    TaskDag::NodeId id;
    bool operator>(const ReadyTask& o) const {
      if (ready_at != o.ready_at) return ready_at > o.ready_at;
      return seq > o.seq;
    }
  };
  std::priority_queue<ReadyTask, std::vector<ReadyTask>, std::greater<>>
      ready;
  // Per-core free time; linear argmin reproduces the old priority-queue
  // order (min free_at, tie → min index) and also answers the
  // "earliest-free core within one domain" query hierarchical dispatch
  // needs. P ≤ 64 keeps the scan trivial.
  std::vector<double> free_at(machine.cores, 0.0);
  const auto earliest_core = [&](std::size_t first, std::size_t count) {
    std::size_t best = first;
    for (std::size_t c = first + 1; c < first + count; ++c) {
      if (free_at[c] < free_at[best]) best = c;
    }
    return best;
  };

  std::vector<std::size_t> pending(dag.size());
  std::vector<double> ready_time(dag.size(), 0.0);
  // Home domain of each task: the domain of the core that ran its
  // latest-finishing predecessor (data lives in that domain's caches).
  // Roots have no home and run anywhere free of charge.
  std::vector<int> home(dag.size(), -1);
  std::size_t seq = 0;
  for (TaskDag::NodeId id = 0; id < dag.size(); ++id) {
    pending[id] = dag.dependency_count(id);
    if (pending[id] == 0) ready.push(ReadyTask{0.0, seq++, id});
  }

  double makespan = 0.0;
  while (!ready.empty()) {
    const ReadyTask task = ready.top();
    ready.pop();
    std::size_t core = earliest_core(0, machine.cores);
    bool cross = nshards > 1 && home[task.id] >= 0 &&
                 static_cast<int>(shard_of_core(core)) != home[task.id];
    if (cross && machine.hierarchical_dispatch) {
      // Shard-first dispatch: take a home-domain core unless going remote
      // — cross cost included — would still start the task strictly
      // sooner. Mirrors the real pool's steal order (local shard first,
      // remote probe only once the domain is dry).
      const std::size_t h = static_cast<std::size_t>(home[task.id]);
      const std::size_t h_first = h * machine.cores / nshards;
      const std::size_t h_count =
          (h + 1) * machine.cores / nshards - h_first;
      const std::size_t home_core = earliest_core(h_first, h_count);
      const double home_start = std::max(task.ready_at, free_at[home_core]);
      const double remote_start = std::max(task.ready_at, free_at[core]) +
                                  machine.cross_shard_steal_cost_s;
      if (home_start <= remote_start) {
        core = home_core;
        cross = false;
      }
    }
    const double start = std::max(task.ready_at, free_at[core]);
    double dispatch = machine.per_task_overhead_s;
    if (cross) {
      ++out.cross_shard_dispatches;
      dispatch += machine.cross_shard_steal_cost_s;
    }
    const double finish = start + dag.cost(task.id) + dispatch;
    out.core_busy_s[core] += finish - start;
    free_at[core] = finish;
    if (machine.record_task_finish) out.task_finish_s[task.id] = finish;
    makespan = std::max(makespan, finish);
    for (TaskDag::NodeId child : dag.dependents(task.id)) {
      if (finish >= ready_time[child]) {
        ready_time[child] = finish;
        home[child] = static_cast<int>(shard_of_core(core));
      }
      if (--pending[child] == 0) {
        ready.push(ReadyTask{ready_time[child], seq++, child});
      }
    }
  }

  out.makespan_s = makespan;
  out.speedup = makespan > 0.0 ? dag.total_work() / makespan : 0.0;
  out.efficiency = out.speedup / static_cast<double>(machine.cores);
  return out;
}

const SimOutcome* SweepTable::find(std::size_t cores) const noexcept {
  for (const SweepPoint& p : points) {
    if (p.cores == cores) return &p.outcome;
  }
  return nullptr;
}

double SweepTable::speedup_at(std::size_t cores) const noexcept {
  const SimOutcome* out = find(cores);
  return out != nullptr ? out->speedup : 0.0;
}

double SweepTable::makespan_at(std::size_t cores) const noexcept {
  const SimOutcome* out = find(cores);
  return out != nullptr ? out->makespan_s : 0.0;
}

SweepTable sweep(const TaskDag& dag, const SweepOptions& opts) {
  SweepTable table;
  table.work_s = dag.total_work();
  table.span_s = dag.critical_path();
  table.points.reserve(opts.cores.size());
  for (const std::size_t p : opts.cores) {
    PARC_CHECK_MSG(p >= 1, "sweep core counts must be >= 1");
    MachineParams machine = opts.machine;
    machine.cores = p;
    table.points.push_back(SweepPoint{p, simulate(dag, machine)});
  }
  return table;
}

TaskDag fork_join_dag(const std::vector<double>& costs) {
  TaskDag dag;
  for (double c : costs) dag.add_task(c);
  return dag;
}

TaskDag divide_conquer_dag(std::size_t elements, std::size_t cutoff,
                           double cost_per_element, double spawn_overhead_s) {
  PARC_CHECK(cutoff >= 1);
  TaskDag dag;
  // Recursive expansion mirroring quicksort: a partition node costs
  // O(elements) (the partition pass), then two halves proceed in parallel.
  auto build = [&](auto&& self, std::size_t elems,
                   const std::vector<TaskDag::NodeId>& deps)
      -> TaskDag::NodeId {
    if (elems <= cutoff) {
      // Leaf: sort the run sequentially, n log n-ish ≈ linear for model.
      return dag.add_task(cost_per_element * static_cast<double>(elems), deps);
    }
    const auto partition = dag.add_task(
        cost_per_element * static_cast<double>(elems) + spawn_overhead_s,
        deps);
    const auto left = self(self, elems / 2, {partition});
    const auto right = self(self, elems - elems / 2, {partition});
    // Join node (zero cost) so callers can depend on the subtree finishing.
    return dag.add_task(0.0, {left, right});
  };
  build(build, elements, {});
  return dag;
}

TaskDag barrier_rounds_dag(std::size_t iters, std::size_t tasks_per_round,
                           double task_cost_s) {
  TaskDag dag;
  std::vector<TaskDag::NodeId> previous;
  for (std::size_t round = 0; round < iters; ++round) {
    std::vector<TaskDag::NodeId> current;
    current.reserve(tasks_per_round);
    for (std::size_t t = 0; t < tasks_per_round; ++t) {
      current.push_back(dag.add_task(task_cost_s, previous));
    }
    previous = std::move(current);
  }
  return dag;
}

TaskDag amdahl_dag(double serial_s, std::size_t parallel_tasks,
                   double parallel_each_s) {
  TaskDag dag;
  const auto serial = dag.add_task(serial_s);
  for (std::size_t i = 0; i < parallel_tasks; ++i) {
    dag.add_task(parallel_each_s, {serial});
  }
  return dag;
}

}  // namespace parc::sim
