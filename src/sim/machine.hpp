// Deterministic machine model (the 1-core-container substitution).
//
// The paper's students measured scaling on the PARC lab's 64-, 16- and
// 8-core machines. This container has one core, so real speedup cannot be
// measured here. Instead, workloads are recorded as a task DAG (per-task
// costs + dependences) and replayed on a simulated P-core machine with
// greedy list scheduling — work-conserving, like the real work-stealing
// runtime. The simulator is exact for the model and reproduces the *shape*
// of every scaling result: near-linear speedup until the work/span bound,
// Amdahl saturation, and the crossovers between strategies.
//
// Validity anchors: makespan ≥ work/P, makespan ≥ span (critical path), and
// greedy scheduling guarantees makespan ≤ work/P + span (Graham's bound);
// tests assert all three.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace parc::sim {

/// Directed acyclic task graph; nodes are added in topological order
/// (dependences must already exist).
class TaskDag {
 public:
  using NodeId = std::size_t;

  /// Add a task with execution cost (seconds) and dependences.
  NodeId add_task(double cost, const std::vector<NodeId>& deps = {});

  [[nodiscard]] std::size_t size() const noexcept { return costs_.size(); }
  [[nodiscard]] double cost(NodeId id) const { return costs_[id]; }
  [[nodiscard]] const std::vector<NodeId>& dependents(NodeId id) const {
    return dependents_[id];
  }
  [[nodiscard]] std::size_t dependency_count(NodeId id) const {
    return dep_counts_[id];
  }

  /// Total work T1 = Σ cost.
  [[nodiscard]] double total_work() const noexcept { return total_work_; }

  /// Span T∞ = longest cost-weighted path.
  [[nodiscard]] double critical_path() const;

  /// Average parallelism T1 / T∞.
  [[nodiscard]] double parallelism() const {
    const double span = critical_path();
    return span > 0.0 ? total_work() / span : 0.0;
  }

 private:
  std::vector<double> costs_;
  std::vector<std::vector<NodeId>> dependents_;
  std::vector<std::size_t> dep_counts_;
  double total_work_ = 0.0;
};

struct MachineParams {
  std::size_t cores = 4;
  /// Fixed scheduling overhead added to every task (dispatch cost).
  double per_task_overhead_s = 0.0;
  std::string name = "machine";
  // Locality-domain extension (appended so positional initialisers of the
  // original three fields keep compiling). Cores are partitioned into
  // `shards` contiguous domains, mirroring sched::WorkStealingPool's
  // Config::shards; a task's *home* domain is the domain of the core that
  // ran its latest-finishing predecessor (roots have none).
  /// Locality domains; 1 (the default) is the flat machine — identical
  /// behaviour to the pre-shard simulator. Clamped to `cores`.
  std::size_t shards = 1;
  /// Extra dispatch latency paid when a task runs outside its home domain
  /// (the modeled cost of a cross-shard steal: cold caches, remote queue).
  double cross_shard_steal_cost_s = 0.0;
  /// false: shard-oblivious greedy dispatch (earliest-free core anywhere,
  /// paying the cross cost whenever it crosses) — the pre-shard scheduler
  /// replayed on a sharded machine. true: hierarchical dispatch — prefer a
  /// home-domain core unless going remote (cross cost included) would
  /// still start the task sooner, mirroring shard-first victim selection.
  bool hierarchical_dispatch = false;
  /// Record each task's simulated finish time into SimOutcome::task_finish_s
  /// (indexed by DAG node id). Off by default: most callers only want the
  /// makespan, and a million-task replay should not allocate a vector per
  /// sweep point unasked. Needed for latency what-ifs (serve p99 replay).
  bool record_task_finish = false;
};

/// The three shared-memory systems of §III-B.
[[nodiscard]] MachineParams parc_64core();  ///< 4× AMD Opteron 6272
[[nodiscard]] MachineParams parc_16core();  ///< 4× Xeon E7340
[[nodiscard]] MachineParams parc_8core();   ///< 2× Xeon E5320

/// The machine this repo actually runs on, with per-task overhead measured
/// by bench_sched_overhead (native TaskCell scheduler, not the paper's JVM
/// runtimes). Use for "what would this DAG cost here" sanity studies.
[[nodiscard]] MachineParams parc_host();

struct SimOutcome {
  double makespan_s = 0.0;
  double speedup = 0.0;      ///< total_work / makespan
  double efficiency = 0.0;   ///< speedup / cores
  std::vector<double> core_busy_s;  ///< per-core busy time
  /// Tasks dispatched outside their home locality domain (counted even at
  /// cross_shard_steal_cost_s == 0, so a zero-cost replay still reports the
  /// cross-domain traffic a shard-oblivious schedule generates). Always 0
  /// on a 1-shard machine.
  std::uint64_t cross_shard_dispatches = 0;
  /// Per-task finish times (seconds, indexed by node id); filled only when
  /// MachineParams::record_task_finish is set, empty otherwise.
  std::vector<double> task_finish_s;
};

/// Replay the DAG on the machine with greedy list scheduling (ready tasks
/// dispatched FIFO to the earliest-free core). Deterministic.
[[nodiscard]] SimOutcome simulate(const TaskDag& dag,
                                  const MachineParams& machine);

// ---------------------------------------------------------------------------
// The one sweep surface (ISSUE 9): every "simulate this DAG at several core
// counts" question goes through sweep(); the returned SweepTable is what
// obs::model::fit consumes and what bench tables print from. Replaces the
// ad-hoc `for (p : Ps) simulate(dag, {p, ...})` loops that used to be
// copy-pasted through bench and tests (and the old speedup_curve helper).
// ---------------------------------------------------------------------------

struct SweepOptions {
  /// Core counts to simulate, in the order the table should carry them.
  std::vector<std::size_t> cores = {1, 2, 4, 8, 16, 32, 64};
  /// Machine template: every point runs this machine with `cores` replaced
  /// (overheads, shards, dispatch policy and the name stem all apply).
  MachineParams machine{1, 0.0, "sweep"};
};

struct SweepPoint {
  std::size_t cores = 0;
  SimOutcome outcome;
};

struct SweepTable {
  double work_s = 0.0;  ///< T1 of the swept DAG
  double span_s = 0.0;  ///< T∞ of the swept DAG
  std::vector<SweepPoint> points;

  /// Outcome at an exact core count; nullptr when that P was not swept.
  [[nodiscard]] const SimOutcome* find(std::size_t cores) const noexcept;
  /// Speedup / makespan at an exact core count (0.0 when not swept).
  [[nodiscard]] double speedup_at(std::size_t cores) const noexcept;
  [[nodiscard]] double makespan_at(std::size_t cores) const noexcept;
};

/// Simulate the DAG once per requested core count. Deterministic; the
/// table's work/span come from the DAG itself (overhead-free), so Graham's
/// bound work/P ≤ makespan ≤ work/P + span can be asserted per point.
[[nodiscard]] SweepTable sweep(const TaskDag& dag, const SweepOptions& opts);

// ---------------------------------------------------------------------------
// DAG builders for the canonical workload shapes.
// ---------------------------------------------------------------------------

/// Flat fork-join: n independent tasks with the given costs.
[[nodiscard]] TaskDag fork_join_dag(const std::vector<double>& costs);

/// Binary divide-and-conquer (quicksort shape): internal nodes cost
/// `split_cost(level, span_elems)`, leaves cost `leaf_cost(elems)`; the two
/// children of a node depend on it, and a join chain mirrors the recursion.
[[nodiscard]] TaskDag divide_conquer_dag(std::size_t elements,
                                         std::size_t cutoff,
                                         double cost_per_element,
                                         double spawn_overhead_s = 0.0);

/// Iterative barrier loop (Jacobi/PageRank shape): `iters` rounds of
/// `tasks_per_round` equal tasks, every round depending on the whole
/// previous round.
[[nodiscard]] TaskDag barrier_rounds_dag(std::size_t iters,
                                         std::size_t tasks_per_round,
                                         double task_cost_s);

/// Amdahl shape: serial prefix + parallel body (for teaching plots).
[[nodiscard]] TaskDag amdahl_dag(double serial_s, std::size_t parallel_tasks,
                                 double parallel_each_s);

}  // namespace parc::sim
