// Parallel Task pipelines: a chain of stages connected by blocking queues,
// all stages active simultaneously — element k can be in stage 3 while
// element k+2 is in stage 1. Order is preserved end to end (each stage is
// sequential), which is the semantics Parallel Task's pipeline construct
// gives GUI applications streaming intermediate results.
//
//   auto done = ptask::pipeline(rt, std::move(paths),
//       [](std::string p){ return load(p); },
//       [](Image i){ return scale(i); });
//   std::vector<Thumb> thumbs = done.get();
//
// Stages are *interactive* tasks (the elastic pool), not compute tasks: a
// stage spends its life blocked on its input queue, and parking a bounded
// compute worker that way invites the nesting deadlock — a helping take()
// can run the upstream stage on its own stack and then starve it. Long-
// lived mostly-waiting work is precisely what Parallel Task routes to
// interactive threads, so the pipeline does too; the compute pool stays
// free for the work inside the stage bodies.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "conc/task_safe.hpp"
#include "ptask/spawn.hpp"

namespace parc::ptask {

namespace detail {

/// Inter-stage channel: elements are optional<T>; an empty token closes the
/// stream. Effectively unbounded (stage outputs are never back-pressured;
/// memory is bounded by the input size, which the caller provided anyway).
template <typename T>
using Flow = conc::ThreadSafeBlockingQueue<std::optional<T>>;

template <typename T>
std::shared_ptr<Flow<T>> make_flow() {
  return std::make_shared<Flow<T>>(std::numeric_limits<std::size_t>::max());
}

/// Terminal: collect the final stream into a vector.
template <typename In>
TaskID<std::vector<In>> connect(Runtime& rt, std::shared_ptr<Flow<In>> in) {
  return run_interactive(rt, [in] {
    std::vector<In> out;
    for (;;) {
      std::optional<In> token = in->take();
      if (!token.has_value()) return out;
      out.push_back(std::move(*token));
    }
  });
}

/// One transforming stage, then recurse on the rest of the chain.
template <typename In, typename F, typename... Rest>
auto connect(Runtime& rt, std::shared_ptr<Flow<In>> in, F f, Rest... rest) {
  using Out = std::invoke_result_t<F, In>;
  static_assert(!std::is_void_v<Out>,
                "pipeline stages must return a value; put side effects in "
                "the sink stage's result");
  auto out = make_flow<Out>();
  run_interactive(rt, [in, out, f = std::move(f)] {
    for (;;) {
      std::optional<In> token = in->take();
      if (!token.has_value()) {
        out->put(std::nullopt);  // propagate end-of-stream
        return;
      }
      out->put(f(std::move(*token)));
    }
  });
  return connect(rt, out, std::move(rest)...);
}

}  // namespace detail

/// Build and start a pipeline over `inputs`; returns a handle whose value is
/// the ordered vector of final-stage outputs.
template <typename In, typename... Stages>
auto pipeline(Runtime& rt, std::vector<In> inputs, Stages... stages) {
  auto source = detail::make_flow<In>();
  auto result = detail::connect(rt, source, std::move(stages)...);
  run_interactive(rt, [source, inputs = std::move(inputs)]() mutable {
    for (auto& x : inputs) source->put(std::move(x));
    source->put(std::nullopt);
  });
  return result;
}

template <typename In, typename... Stages>
auto pipeline(std::vector<In> inputs, Stages... stages) {
  return pipeline(Runtime::global(), std::move(inputs), std::move(stages)...);
}

}  // namespace parc::ptask
