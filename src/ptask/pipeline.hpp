// Parallel Task pipelines: a chain of stages connected by bounded channels,
// all stages active simultaneously — element k can be in stage 3 while
// element k+2 is in stage 1. Order is preserved end to end (each stage is
// sequential), which is the semantics Parallel Task's pipeline construct
// gives GUI applications streaming intermediate results.
//
//   auto done = ptask::pipeline(rt, std::move(paths),
//       [](std::string p){ return load(p); },
//       [](Image i){ return scale(i); });
//   std::vector<Thumb> thumbs = done.get();
//
// Stages are *interactive* tasks (the elastic pool), not compute tasks: a
// stage spends its life blocked on its input channel, and parking a bounded
// compute worker that way invites the nesting deadlock — a helping pop
// can run the upstream stage on its own stack and then starve it. Long-
// lived mostly-waiting work is precisely what Parallel Task routes to
// interactive threads, so the pipeline does too; the compute pool stays
// free for the work inside the stage bodies.
//
// The inter-stage edges are SPSC flow::Channels (PR 8): close() is the
// end-of-stream signal (no optional sentinel), and the bounded capacity
// back-pressures a fast stage instead of buffering the whole stream.
// For per-stage parallelism, fusion and error propagation, use
// flow::Pipeline directly — this adapter keeps the ParallelTask-shaped API.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "flow/channel.hpp"
#include "ptask/spawn.hpp"

namespace parc::ptask {

namespace detail {

/// Elements buffered per inter-stage edge before the producer stage blocks.
inline constexpr std::size_t kStageChannelCapacity = 256;

/// Inter-stage edge. Exactly one producer and one consumer per edge (each
/// stage is a single sequential task), so the SPSC fast path applies.
template <typename T>
using Flow = flow::Channel<T>;

template <typename T>
std::shared_ptr<Flow<T>> make_flow() {
  return std::make_shared<Flow<T>>(flow::ChannelOptions{
      .capacity = kStageChannelCapacity, .spsc = true});
}

/// Terminal: collect the final stream into a vector.
template <typename In>
TaskID<std::vector<In>> connect(Runtime& rt, std::shared_ptr<Flow<In>> in) {
  return run_interactive(rt, [in] {
    std::vector<In> out;
    In token;
    while (in->pop(token)) out.push_back(std::move(token));
    return out;
  });
}

/// One transforming stage, then recurse on the rest of the chain.
template <typename In, typename F, typename... Rest>
auto connect(Runtime& rt, std::shared_ptr<Flow<In>> in, F f, Rest... rest) {
  using Out = std::invoke_result_t<F, In>;
  static_assert(!std::is_void_v<Out>,
                "pipeline stages must return a value; put side effects in "
                "the sink stage's result");
  static_assert(std::is_default_constructible_v<Out>,
                "pipeline stage results cross a flow::Channel, whose ring "
                "slots are default-constructed");
  auto out = make_flow<Out>();
  run_interactive(rt, [in, out, f = std::move(f)] {
    In token;
    while (in->pop(token)) {
      if (!out->push(f(std::move(token)))) break;  // downstream poisoned
    }
    out->close();  // propagate end-of-stream
  });
  return connect(rt, out, std::move(rest)...);
}

}  // namespace detail

/// Build and start a pipeline over `inputs`; returns a handle whose value is
/// the ordered vector of final-stage outputs.
template <typename In, typename... Stages>
auto pipeline(Runtime& rt, std::vector<In> inputs, Stages... stages) {
  auto source = detail::make_flow<In>();
  auto result = detail::connect(rt, source, std::move(stages)...);
  run_interactive(rt, [source, inputs = std::move(inputs)]() mutable {
    for (auto& x : inputs) {
      if (!source->push(std::move(x))) break;  // downstream poisoned
    }
    source->close();
  });
  return result;
}

template <typename In, typename... Stages>
auto pipeline(std::vector<In> inputs, Stages... stages) {
  return pipeline(Runtime::global(), std::move(inputs), std::move(stages)...);
}

}  // namespace parc::ptask
