// Shared state behind a TaskID: status, result/exception slot, completion
// continuations, dependence bookkeeping and the cancellation flag.
//
// Mirrors the runtime objects that the Java Parallel Task compiler emits for
// a `TASK` method invocation (Giacaman & Sinnen, IJPP 2013): the handle the
// caller holds is a thin shared_ptr to this state.
//
// Synchronization rides the sched completion core (sched/completion.hpp):
// continuations and dependents are nodes on the Completion's lock-free
// sealed Treiber stack, and blocking waits park on its futex word — there
// is no mutex or condition_variable anywhere in a task's lifecycle. The
// error slot is a plain member: it is written before finish() publishes the
// terminal status, and every reader first observes finished() through an
// acquire (status load or completion word), which orders the read.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "obs/trace.hpp"
#include "sched/completion.hpp"
#include "support/check.hpp"

namespace parc::ptask {

enum class TaskStatus : std::uint8_t {
  kCreated,    ///< constructed, dependences not yet satisfied
  kScheduled,  ///< in a pool queue
  kRunning,    ///< body executing
  kDone,       ///< completed with a value
  kFailed,     ///< completed with an exception
  kCancelled,  ///< cancelled before the body started
};

/// Thrown by TaskID::get() when the task was cancelled before running.
class TaskCancelled : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "parc::ptask task was cancelled before it ran";
  }
};

class TaskStateBase : public std::enable_shared_from_this<TaskStateBase> {
 public:
  virtual ~TaskStateBase() = default;

  /// obs trace id (0 = spawned with no live trace session). Written once at
  /// spawn before the task can be scheduled, read by the runtime's task
  /// lifecycle and dependence-edge trace events.
  std::uint64_t obs_id = 0;

  [[nodiscard]] TaskStatus status() const noexcept {
    return status_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool finished() const noexcept {
    const TaskStatus s = status();
    return s == TaskStatus::kDone || s == TaskStatus::kFailed ||
           s == TaskStatus::kCancelled;
  }

  /// Request cooperative cancellation. Returns true if the request landed
  /// before the body started (i.e. the task will not run).
  bool request_cancel() noexcept {
    cancel_requested_.store(true, std::memory_order_release);
    return !started_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  /// Register a continuation to run after completion. If the task has
  /// already finished the continuation runs inline on the calling thread;
  /// otherwise it runs on the completing thread, after the terminal status
  /// is published.
  void add_continuation(std::function<void()> fn) {
    completion_.add_continuation(std::move(fn));
  }

  /// Register `dependent` to be notified when this task finishes. Returns
  /// false (and does not register) if this task is already finished.
  bool add_dependent(std::shared_ptr<TaskStateBase> dependent) {
    auto* node = sched::make_completion_node(
        [dep = std::move(dependent)]() noexcept { dep->dependence_satisfied(); });
    // Dependence countdown edges must run on the completing thread, before
    // the completed bit is published: wait()-returned implies the successor
    // was released. The countdown is O(1); only the successor's *body*
    // travels through the pool (SubmitHint::local in detail::spawn).
    node->inline_only = true;
    if (!completion_.try_push(node)) {
      delete node;  // already finished: the caller counts the dep itself
      return false;
    }
    return true;
  }

  /// Dependence countdown; when it reaches zero the scheduler closure runs.
  void init_dependences(std::size_t count, std::function<void()> on_ready) {
    deps_.init(count, std::move(on_ready));
  }

  void dependence_satisfied() { deps_.satisfy(); }

  /// Blocking wait for completion from a non-pool thread: spins briefly,
  /// then parks on the completion's futex word (no mutex/cv).
  void wait_blocking() { completion_.wait(obs_id); }

  [[nodiscard]] std::exception_ptr error() const noexcept {
    // Only read after finished(); release/acquire on status_ orders it.
    return error_;
  }

  /// Rethrows the failure/cancellation, if any. Requires finished().
  void throw_if_failed() const {
    const TaskStatus s = status();
    if (s == TaskStatus::kFailed) std::rethrow_exception(error_);
    if (s == TaskStatus::kCancelled) throw TaskCancelled{};
  }

 protected:
  /// The executing job calls these.
  void mark_scheduled() noexcept {
    status_.store(TaskStatus::kScheduled, std::memory_order_release);
  }

  /// Returns false if cancellation won and the body must not run.
  bool begin_running() noexcept {
    if (cancel_requested_.load(std::memory_order_acquire)) return false;
    started_.store(true, std::memory_order_release);
    status_.store(TaskStatus::kRunning, std::memory_order_release);
    return true;
  }

  void finish(TaskStatus terminal, std::exception_ptr error) {
    PARC_DCHECK(terminal == TaskStatus::kDone ||
                terminal == TaskStatus::kFailed ||
                terminal == TaskStatus::kCancelled);
    // Publish payload before the completion fires: continuations and
    // waiters acquire through status_/the completion word and must see
    // both the error slot and the terminal status.
    error_ = std::move(error);
    status_.store(terminal, std::memory_order_release);
    // Runs continuations and dependent notifications on this thread, then
    // wakes parked waiters. Its final RMW is the release point wait_blocking
    // synchronizes with.
    completion_.complete(obs_id);
  }

  /// Trace hooks around the body. The finish event must be emitted *before*
  /// finish() publishes completion: a waiter that returns from wait() may
  /// immediately end the trace session, and the task's lifecycle has to be
  /// fully recorded by then.
  void trace_body_start() const noexcept {
    if (obs::tracing() && obs_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kTaskStart, obs_id, 0);
    }
  }
  void trace_body_finish() const noexcept {
    if (obs::tracing() && obs_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kTaskFinish, obs_id, 0);
    }
  }

 private:
  std::atomic<TaskStatus> status_{TaskStatus::kCreated};
  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> started_{false};
  sched::DependencyCounter deps_;
  sched::Completion completion_;
  std::exception_ptr error_;  ///< written in finish() before publication

  template <typename>
  friend class TaskBody;
};

/// Typed result slot + body execution glue.
template <typename T>
class TaskState final : public TaskStateBase {
 public:
  [[nodiscard]] const T& value() const {
    PARC_CHECK(status() == TaskStatus::kDone);
    return *value_;
  }

  /// Templated on the callable so spawn sites avoid a std::function
  /// conversion (and its potential allocation) per task. Takes an lvalue
  /// reference: mutable lambdas are legal task bodies.
  template <typename F>
  void run_body(F& body) {
    if (!begin_running()) {
      finish(TaskStatus::kCancelled, nullptr);
      return;
    }
    trace_body_start();
    try {
      value_.emplace(body());
      trace_body_finish();
      finish(TaskStatus::kDone, nullptr);
    } catch (...) {
      trace_body_finish();
      finish(TaskStatus::kFailed, std::current_exception());
    }
  }

  void mark_scheduled_public() noexcept { mark_scheduled(); }

  /// Direct completion, used by aggregate tasks (multi-tasks) whose result
  /// is assembled outside a single body.
  void complete_value(T v) {
    value_.emplace(std::move(v));
    finish(TaskStatus::kDone, nullptr);
  }
  void complete_error(std::exception_ptr e) {
    finish(TaskStatus::kFailed, std::move(e));
  }
  void complete_cancelled() { finish(TaskStatus::kCancelled, nullptr); }

 private:
  std::optional<T> value_;
};

template <>
class TaskState<void> final : public TaskStateBase {
 public:
  /// Templated on the callable so spawn sites avoid a std::function
  /// conversion (and its potential allocation) per task. Takes an lvalue
  /// reference: mutable lambdas are legal task bodies.
  template <typename F>
  void run_body(F& body) {
    if (!begin_running()) {
      finish(TaskStatus::kCancelled, nullptr);
      return;
    }
    trace_body_start();
    try {
      body();
      trace_body_finish();
      finish(TaskStatus::kDone, nullptr);
    } catch (...) {
      trace_body_finish();
      finish(TaskStatus::kFailed, std::current_exception());
    }
  }

  void mark_scheduled_public() noexcept { mark_scheduled(); }

  /// Direct completion, used by aggregate tasks (multi-tasks).
  void complete_value() { finish(TaskStatus::kDone, nullptr); }
  void complete_error(std::exception_ptr e) {
    finish(TaskStatus::kFailed, std::move(e));
  }
  void complete_cancelled() { finish(TaskStatus::kCancelled, nullptr); }
};

/// Identity of the task currently executing on this thread (cancellation
/// checks, diagnostics). Set by the runtime around body execution.
class CurrentTask {
 public:
  [[nodiscard]] static TaskStateBase* get() noexcept { return current_; }

  class Scope {
   public:
    explicit Scope(TaskStateBase* state) noexcept : prev_(current_) {
      current_ = state;
    }
    ~Scope() { current_ = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TaskStateBase* prev_;
  };

 private:
  // inline + constant-initialized: accesses from other TUs go straight to
  // the TLS slot instead of through a lazy-init wrapper function (which
  // GCC's UBSan mis-flags as a possible null store under -fsanitize).
  static inline thread_local TaskStateBase* current_ = nullptr;
};

/// True when the currently running task has been asked to cancel.
/// Long-running task bodies poll this (cooperative cancellation).
[[nodiscard]] inline bool cancellation_requested() noexcept {
  const TaskStateBase* t = CurrentTask::get();
  return t != nullptr && t->cancel_requested();
}

}  // namespace parc::ptask
