// Elastic thread pool for *interactive* (IO-bound) tasks.
//
// Parallel Task distinguishes compute tasks (bounded work-stealing pool,
// one worker per core) from interactive tasks: operations that mostly wait
// (network fetches, disk scans driven by a GUI). Those must not occupy a
// compute worker, so they run on threads created on demand, cached for
// reuse, and retired after an idle timeout — the same policy as
// java.util.concurrent's CachedThreadPool which Parallel Task wraps.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parc::ptask {

class CachedThreadPool {
 public:
  struct Config {
    std::size_t max_threads = 256;
    std::chrono::milliseconds idle_timeout{2000};
  };

  CachedThreadPool() : CachedThreadPool(Config{}) {}
  explicit CachedThreadPool(Config cfg);
  ~CachedThreadPool();

  CachedThreadPool(const CachedThreadPool&) = delete;
  CachedThreadPool& operator=(const CachedThreadPool&) = delete;

  /// Enqueue a job; spawns a new thread if none is idle and the cap allows.
  /// Above the cap, jobs queue until a thread frees up.
  void submit(std::function<void()> fn);

  /// Threads currently alive (running or idle).
  [[nodiscard]] std::size_t thread_count() const;
  /// High-water mark of concurrently alive threads.
  [[nodiscard]] std::size_t peak_thread_count() const;

 private:
  void worker_loop();

  Config cfg_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  std::size_t alive_ = 0;                    // guarded by mutex_
  std::size_t idle_ = 0;                     // guarded by mutex_
  std::size_t peak_ = 0;                     // guarded by mutex_
  bool stop_ = false;                        // guarded by mutex_
  std::vector<std::thread> threads_;         // guarded by mutex_
};

}  // namespace parc::ptask
