// TaskID<T> — the caller-side handle of a ParallelTask task, mirroring the
// TaskID the Java compiler returns from a `TASK`-annotated call.
//
// Supports: readiness queries, cooperative waits (a waiting pool worker
// executes other tasks instead of blocking), result retrieval with exception
// propagation, GUI-aware completion handlers (`notify` — delivered on the
// registered event-dispatch thread), async error handlers, and cooperative
// cancellation.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <utility>

#include "ptask/runtime.hpp"
#include "ptask/task_state.hpp"
#include "support/check.hpp"

namespace parc::ptask {

namespace detail {

/// Cooperative wait shared by all handle types: a thread belonging to the
/// runtime's compute pool helps (runs queued tasks); any other thread spins
/// briefly then parks on the task's completion word (sched::Completion).
inline void wait_on(Runtime& rt, TaskStateBase& state) {
  if (sched::WorkStealingPool::current_pool() == &rt.pool()) {
    rt.pool().help_while([&state] { return !state.finished(); });
  } else {
    state.wait_blocking();
  }
}

}  // namespace detail

template <typename T>
class TaskID {
 public:
  using value_type = T;

  TaskID() = default;
  TaskID(std::shared_ptr<TaskState<T>> state, Runtime* rt)
      : state_(std::move(state)), rt_(rt) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept {
    return state_ && state_->finished();
  }
  [[nodiscard]] TaskStatus status() const noexcept {
    PARC_CHECK(valid());
    return state_->status();
  }

  /// Wait for completion (does not throw; see get()).
  void wait() const {
    PARC_CHECK(valid());
    detail::wait_on(*rt_, *state_);
  }

  /// Wait, then return the result; rethrows the task's exception, or
  /// TaskCancelled if it was cancelled before running.
  const T& get() const {
    wait();
    state_->throw_if_failed();
    return state_->value();
  }

  /// GUI-aware completion handler: runs on the event-dispatch thread if one
  /// is registered with the runtime (Runtime::set_event_dispatcher), inline
  /// on the completing worker otherwise. Only successful completions are
  /// delivered; pair with on_error for failures.
  TaskID& notify(std::function<void(const T&)> handler) {
    PARC_CHECK(valid());
    auto state = state_;
    Runtime* rt = rt_;
    state_->add_continuation([state, rt, handler = std::move(handler)] {
      if (state->status() == TaskStatus::kDone) {
        rt->dispatch_to_edt([state, handler] { handler(state->value()); });
      }
    });
    return *this;
  }

  /// Completion handler run inline on the completing worker thread.
  TaskID& notify_inline(std::function<void(const T&)> handler) {
    PARC_CHECK(valid());
    auto state = state_;
    state_->add_continuation([state, handler = std::move(handler)] {
      if (state->status() == TaskStatus::kDone) handler(state->value());
    });
    return *this;
  }

  /// Asynchronous exception handler (ParallelTask's `asyncCatch`): delivered
  /// on the EDT like notify. Also fires for cancellation (TaskCancelled).
  TaskID& on_error(std::function<void(std::exception_ptr)> handler) {
    PARC_CHECK(valid());
    auto state = state_;
    Runtime* rt = rt_;
    state_->add_continuation([state, rt, handler = std::move(handler)] {
      const TaskStatus s = state->status();
      if (s == TaskStatus::kFailed) {
        rt->dispatch_to_edt([state, handler] { handler(state->error()); });
      } else if (s == TaskStatus::kCancelled) {
        rt->dispatch_to_edt([handler] {
          handler(std::make_exception_ptr(TaskCancelled{}));
        });
      }
    });
    return *this;
  }

  /// Request cancellation. Returns true if the task had not yet started
  /// (it will complete as kCancelled without running). A task already
  /// running observes the request via ptask::cancellation_requested().
  bool cancel() {
    PARC_CHECK(valid());
    return state_->request_cancel();
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_ && state_->cancel_requested();
  }

  /// Untyped state, used to express dependences (run_after).
  [[nodiscard]] std::shared_ptr<TaskStateBase> state_base() const {
    return state_;
  }
  [[nodiscard]] Runtime* runtime() const noexcept { return rt_; }

 private:
  std::shared_ptr<TaskState<T>> state_;
  Runtime* rt_ = nullptr;
};

template <>
class TaskID<void> {
 public:
  using value_type = void;

  TaskID() = default;
  TaskID(std::shared_ptr<TaskState<void>> state, Runtime* rt)
      : state_(std::move(state)), rt_(rt) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool ready() const noexcept {
    return state_ && state_->finished();
  }
  [[nodiscard]] TaskStatus status() const noexcept {
    PARC_CHECK(valid());
    return state_->status();
  }

  void wait() const {
    PARC_CHECK(valid());
    detail::wait_on(*rt_, *state_);
  }

  void get() const {
    wait();
    state_->throw_if_failed();
  }

  TaskID& notify(std::function<void()> handler) {
    PARC_CHECK(valid());
    auto state = state_;
    Runtime* rt = rt_;
    state_->add_continuation([state, rt, handler = std::move(handler)] {
      if (state->status() == TaskStatus::kDone) {
        rt->dispatch_to_edt(handler);
      }
    });
    return *this;
  }

  TaskID& notify_inline(std::function<void()> handler) {
    PARC_CHECK(valid());
    auto state = state_;
    state_->add_continuation([state, handler = std::move(handler)] {
      if (state->status() == TaskStatus::kDone) handler();
    });
    return *this;
  }

  TaskID& on_error(std::function<void(std::exception_ptr)> handler) {
    PARC_CHECK(valid());
    auto state = state_;
    Runtime* rt = rt_;
    state_->add_continuation([state, rt, handler = std::move(handler)] {
      const TaskStatus s = state->status();
      if (s == TaskStatus::kFailed) {
        rt->dispatch_to_edt([state, handler] { handler(state->error()); });
      } else if (s == TaskStatus::kCancelled) {
        rt->dispatch_to_edt([handler] {
          handler(std::make_exception_ptr(TaskCancelled{}));
        });
      }
    });
    return *this;
  }

  bool cancel() {
    PARC_CHECK(valid());
    return state_->request_cancel();
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_ && state_->cancel_requested();
  }

  [[nodiscard]] std::shared_ptr<TaskStateBase> state_base() const {
    return state_;
  }
  [[nodiscard]] Runtime* runtime() const noexcept { return rt_; }

 private:
  std::shared_ptr<TaskState<void>> state_;
  Runtime* rt_ = nullptr;
};

}  // namespace parc::ptask
