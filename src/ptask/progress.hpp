// ProgressChannel: SwingWorker's publish()/process() for Parallel Task.
//
// A background task publishes intermediate results from any thread; the
// channel coalesces them and delivers batches to a handler on the
// event-dispatch thread. Coalescing matters: a task publishing thousands of
// items must not flood the EDT with one event each — batches arrive at the
// EDT's own pace, exactly like SwingWorker.
#pragma once

#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "ptask/runtime.hpp"
#include "support/check.hpp"

namespace parc::ptask {

template <typename P>
class ProgressChannel {
 public:
  using Handler = std::function<void(std::vector<P>)>;

  ProgressChannel(Runtime& rt, Handler on_process)
      : rt_(rt), state_(std::make_shared<State>()) {
    PARC_CHECK(on_process != nullptr);
    state_->handler = std::move(on_process);
  }

  /// Thread-safe; coalesces with other pending publishes. The handler runs
  /// on the EDT (or inline when no dispatcher is registered).
  void publish(P item) {
    auto state = state_;
    bool schedule = false;
    {
      std::scoped_lock lock(state->mutex);
      state->buffer.push_back(std::move(item));
      if (!state->drain_scheduled) {
        state->drain_scheduled = true;
        schedule = true;
      }
    }
    if (schedule) {
      rt_.dispatch_to_edt([state] {
        std::vector<P> batch;
        {
          std::scoped_lock lock(state->mutex);
          batch.swap(state->buffer);
          state->drain_scheduled = false;
        }
        if (!batch.empty()) state->handler(std::move(batch));
      });
    }
  }

  /// Number of batches delivered so far (handler invocations).
  [[nodiscard]] std::size_t pending() const {
    std::scoped_lock lock(state_->mutex);
    return state_->buffer.size();
  }

 private:
  struct State {
    mutable std::mutex mutex;
    std::vector<P> buffer;        // guarded by mutex
    bool drain_scheduled = false; // guarded by mutex
    Handler handler;              // set once at construction
  };

  Runtime& rt_;
  std::shared_ptr<State> state_;
};

}  // namespace parc::ptask
