#include "ptask/cached_pool.hpp"

#include "support/check.hpp"

namespace parc::ptask {

CachedThreadPool::CachedThreadPool(Config cfg) : cfg_(cfg) {
  PARC_CHECK(cfg_.max_threads >= 1);
}

CachedThreadPool::~CachedThreadPool() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
    cv_.notify_all();
    to_join.swap(threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  // Any jobs still queued after shutdown run on the destructing thread so
  // the "every submitted job executes" contract holds.
  std::deque<std::function<void()>> leftovers;
  {
    std::unique_lock lock(mutex_);
    leftovers.swap(queue_);
  }
  for (auto& fn : leftovers) fn();
}

void CachedThreadPool::submit(std::function<void()> fn) {
  PARC_CHECK(fn != nullptr);
  std::unique_lock lock(mutex_);
  PARC_CHECK_MSG(!stop_, "submit after CachedThreadPool shutdown");
  queue_.push_back(std::move(fn));
  // Capacity check against the *backlog*, not just "is anyone idle": idle
  // workers may not have woken yet (certain on a single-core host), so each
  // queued job needs either a distinct idle waiter or a fresh thread —
  // otherwise a burst of long-running jobs silently exceeds the waiters and
  // the tail of the burst starves.
  if (queue_.size() <= idle_) {
    cv_.notify_one();
    return;
  }
  if (alive_ < cfg_.max_threads) {
    ++alive_;
    peak_ = std::max(peak_, alive_);
    threads_.emplace_back([this] { worker_loop(); });
  } else {
    cv_.notify_one();  // at the cap: best effort, job waits for a finisher
  }
}

void CachedThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!queue_.empty()) {
      auto fn = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      fn();
      lock.lock();
      continue;
    }
    if (stop_) break;
    ++idle_;
    const bool woke = cv_.wait_for(lock, cfg_.idle_timeout, [this] {
      return stop_ || !queue_.empty();
    });
    --idle_;
    if (!woke) break;  // idle timeout: retire this thread
  }
  --alive_;
}

std::size_t CachedThreadPool::thread_count() const {
  std::scoped_lock lock(mutex_);
  return alive_;
}

std::size_t CachedThreadPool::peak_thread_count() const {
  std::scoped_lock lock(mutex_);
  return peak_;
}

}  // namespace parc::ptask
