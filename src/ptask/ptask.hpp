// Umbrella header for the ParallelTask runtime (parc::ptask).
//
// Quick tour:
//   auto t = ptask::run([]{ return render(img); });   // spawn
//   t.notify([](const Thumb& th){ list.add(th); });   // GUI-aware handler
//   auto u = ptask::run_after([...]{...}, t);         // dependsOn
//   auto io = ptask::run_interactive([...]{...});     // IO task
//   auto m = ptask::run_multi(n, [](std::size_t i){...});  // multi-task
//   t.get();                                          // wait + result
#pragma once

#include "ptask/cached_pool.hpp"   // IWYU pragma: export
#include "ptask/pipeline.hpp"      // IWYU pragma: export
#include "ptask/progress.hpp"      // IWYU pragma: export
#include "ptask/runtime.hpp"       // IWYU pragma: export
#include "ptask/spawn.hpp"         // IWYU pragma: export
#include "ptask/task_id.hpp"       // IWYU pragma: export
#include "ptask/task_state.hpp"    // IWYU pragma: export
