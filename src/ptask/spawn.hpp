// Task creation API: the C++ spelling of Parallel Task's TASK constructs.
//
//   run(body)                         — `TASK R m(...)`      (compute task)
//   run_after(body, dep1, dep2, ...)  — `dependsOn(...)`     (task graph)
//   run_interactive(body)             — `IO_TASK`            (elastic pool)
//   run_multi(n, f)                   — `TASK(n) / TASK(*)`  (multi-task)
//   TaskGroup / parallel_invoke       — structured join points
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "ptask/task_id.hpp"
#include "sched/task_graph.hpp"

namespace parc::ptask {

namespace detail {

/// Binds a task body to its state. Returns the lambda itself (not a
/// std::function): the pool's TaskCell stores small closures inline, so
/// keeping the concrete type avoids a type-erasure allocation per spawn.
template <typename R, typename F>
auto make_job(std::shared_ptr<TaskState<R>> state, F body) {
  return [state = std::move(state), body = std::move(body)]() mutable {
    CurrentTask::Scope scope(state.get());
    // Lifecycle trace events are emitted inside run_body: the finish event
    // must land before finish() unblocks waiters (see trace_body_finish).
    state->run_body(body);
  };
}

/// Trace a task's creation: a fresh obs id, a spawn event carrying the
/// spawning task's id (0 at top level), and one dependence edge per dep.
/// No-op (id stays 0) while no trace session is live.
inline void trace_spawn(
    TaskStateBase& state,
    const std::vector<std::shared_ptr<TaskStateBase>>& deps) {
  if (obs::tracing()) [[unlikely]] {
    state.obs_id = obs::next_id();
    const TaskStateBase* parent = CurrentTask::get();
    obs::emit(obs::EventKind::kTaskSpawn, state.obs_id,
              parent != nullptr ? parent->obs_id : 0);
    for (const auto& dep : deps) {
      if (dep != nullptr && dep->obs_id != 0) {
        obs::emit(obs::EventKind::kDepEdge, dep->obs_id, state.obs_id);
      }
    }
  }
}

/// Per-body trace id for a multi-task: spawn + ready events parented to the
/// aggregate handle, emitted at submit time. Returns 0 while untraced.
inline std::uint64_t trace_multi_body(const TaskStateBase& agg) {
  if (obs::tracing()) [[unlikely]] {
    const std::uint64_t id = obs::next_id();
    obs::emit(obs::EventKind::kTaskSpawn, id, agg.obs_id);
    obs::emit(obs::EventKind::kTaskReady, id, 0);
    return id;
  }
  return 0;
}

/// Wire dependences with a +1 registration hold so the task cannot fire
/// while registration is still in progress.
inline void wire_dependences(
    const std::shared_ptr<TaskStateBase>& state,
    const std::vector<std::shared_ptr<TaskStateBase>>& deps,
    std::function<void()> submit) {
  state->init_dependences(deps.size() + 1, std::move(submit));
  for (const auto& dep : deps) {
    PARC_CHECK_MSG(dep != nullptr, "dependence on an invalid TaskID");
    if (!dep->add_dependent(state)) {
      state->dependence_satisfied();  // dep already finished
    }
  }
  state->dependence_satisfied();  // release the registration hold
}

template <typename R, typename F>
TaskID<R> spawn(Runtime& rt, F&& body,
                std::vector<std::shared_ptr<TaskStateBase>> deps,
                bool interactive) {
  auto state = std::make_shared<TaskState<R>>();
  trace_spawn(*state, deps);
  auto job = make_job<R>(state, std::forward<F>(body));
  // A dependent task is released by the thread that satisfied its final
  // dependence — usually the predecessor's worker, whose cache holds the
  // data the successor is about to read: hint `local` so the release lands
  // on that worker's own deque tail (continuation stealing). Fresh spawns
  // resolve placement at submit time (`auto_`).
  const auto hint =
      deps.empty() ? sched::SubmitHint::auto_ : sched::SubmitHint::local;
  auto submit = [state, job = std::move(job), &rt, interactive,
                 hint]() mutable {
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kTaskReady, state->obs_id, 0);
    }
    state->mark_scheduled_public();
    if (interactive) {
      rt.interactive_pool().submit(std::move(job));
    } else {
      rt.pool().submit(std::move(job), hint);
    }
  };
  wire_dependences(state, deps, std::move(submit));
  return TaskID<R>(std::move(state), &rt);
}

}  // namespace detail

/// Spawn a compute task on the given runtime.
template <typename F>
auto run(Runtime& rt, F&& body) -> TaskID<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  return detail::spawn<R>(rt, std::forward<F>(body), {}, /*interactive=*/false);
}

/// Spawn a compute task on the global runtime.
template <typename F>
auto run(F&& body) -> TaskID<std::invoke_result_t<F>> {
  return run(Runtime::global(), std::forward<F>(body));
}

/// Spawn a task that starts only after all `deps` have finished (in any
/// terminal state; inspect the deps yourself if failure matters).
template <typename F, typename... DepTs>
auto run_after(Runtime& rt, F&& body, const TaskID<DepTs>&... deps)
    -> TaskID<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  std::vector<std::shared_ptr<TaskStateBase>> dep_states{deps.state_base()...};
  return detail::spawn<R>(rt, std::forward<F>(body), std::move(dep_states),
                          /*interactive=*/false);
}

template <typename F, typename... DepTs>
auto run_after(F&& body, const TaskID<DepTs>&... deps)
    -> TaskID<std::invoke_result_t<F>> {
  return run_after(Runtime::global(), std::forward<F>(body), deps...);
}

/// Spawn an interactive (IO-bound) task on the elastic pool: never occupies
/// a compute worker, so GUI-driven scans/downloads cannot starve computation.
template <typename F>
auto run_interactive(Runtime& rt, F&& body)
    -> TaskID<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  return detail::spawn<R>(rt, std::forward<F>(body), {}, /*interactive=*/true);
}

template <typename F>
auto run_interactive(F&& body) -> TaskID<std::invoke_result_t<F>> {
  return run_interactive(Runtime::global(), std::forward<F>(body));
}

/// Multi-task (`TASK(n)`): logically one task expanded into `n` bodies
/// f(0..n-1) running in parallel; the returned handle completes when all
/// bodies have. For value-returning f the results arrive index-ordered.
template <typename F>
  requires std::is_void_v<std::invoke_result_t<F, std::size_t>>
TaskID<void> run_multi(Runtime& rt, std::size_t n, F&& f) {
  auto agg = std::make_shared<TaskState<void>>();
  if (n == 0) {
    agg->complete_value();
    return TaskID<void>(std::move(agg), &rt);
  }
  struct Shared {
    std::atomic<std::size_t> remaining;
    sched::FirstError error;  // lock-free first-failure capture
    std::function<void(std::size_t)> body;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining.store(n);
  shared->body = std::forward<F>(f);
  detail::trace_spawn(*agg, {});
  // One batched submission: n cells enqueued, workers woken once — the
  // wakeup cost of a TASK(n) no longer scales with n.
  rt.pool().submit_n(n, [&shared, &agg](std::size_t i) {
    // The extra id capture keeps the closure at exactly
    // TaskCell::kInlineBytes, so multi-task bodies still store inline.
    return [shared, agg, i, tid = detail::trace_multi_body(*agg)] {
      if (obs::tracing() && tid != 0) [[unlikely]] {
        obs::emit(obs::EventKind::kTaskStart, tid, 0);
      }
      if (!agg->cancel_requested()) {
        CurrentTask::Scope scope(agg.get());
        try {
          shared->body(i);
        } catch (...) {
          shared->error.capture(std::current_exception());
        }
      }
      if (obs::tracing() && tid != 0) [[unlikely]] {
        obs::emit(obs::EventKind::kTaskFinish, tid, 0);
      }
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (agg->cancel_requested()) {
          agg->complete_cancelled();
        } else if (auto err = shared->error.take()) {
          agg->complete_error(std::move(err));
        } else {
          agg->complete_value();
        }
      }
    };
  }, sched::SubmitHint::auto_);
  return TaskID<void>(std::move(agg), &rt);
}

template <typename F>
  requires(!std::is_void_v<std::invoke_result_t<F, std::size_t>>)
auto run_multi(Runtime& rt, std::size_t n, F&& f)
    -> TaskID<std::vector<std::invoke_result_t<F, std::size_t>>> {
  using R = std::invoke_result_t<F, std::size_t>;
  auto agg = std::make_shared<TaskState<std::vector<R>>>();
  if (n == 0) {
    agg->complete_value({});
    return TaskID<std::vector<R>>(std::move(agg), &rt);
  }
  struct Shared {
    std::atomic<std::size_t> remaining;
    sched::FirstError error;  // lock-free first-failure capture
    std::vector<std::optional<R>> slots;
    std::function<R(std::size_t)> body;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining.store(n);
  shared->slots.resize(n);
  shared->body = std::forward<F>(f);
  detail::trace_spawn(*agg, {});
  rt.pool().submit_n(n, [&shared, &agg](std::size_t i) {
    return [shared, agg, i, tid = detail::trace_multi_body(*agg)] {
      if (obs::tracing() && tid != 0) [[unlikely]] {
        obs::emit(obs::EventKind::kTaskStart, tid, 0);
      }
      if (!agg->cancel_requested()) {
        CurrentTask::Scope scope(agg.get());
        try {
          shared->slots[i].emplace(shared->body(i));
        } catch (...) {
          shared->error.capture(std::current_exception());
        }
      }
      if (obs::tracing() && tid != 0) [[unlikely]] {
        obs::emit(obs::EventKind::kTaskFinish, tid, 0);
      }
      if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (agg->cancel_requested()) {
          agg->complete_cancelled();
        } else if (auto err = shared->error.take()) {
          agg->complete_error(std::move(err));
        } else {
          std::vector<R> out;
          out.reserve(shared->slots.size());
          for (auto& slot : shared->slots) out.push_back(std::move(*slot));
          agg->complete_value(std::move(out));
        }
      }
    };
  }, sched::SubmitHint::auto_);
  return TaskID<std::vector<R>>(std::move(agg), &rt);
}

template <typename F>
auto run_multi(std::size_t n, F&& f) {
  return run_multi(Runtime::global(), n, std::forward<F>(f));
}

/// Structured fork/join: spawn void tasks into the group, then wait() for
/// all of them. wait() rethrows the first captured exception. A worker that
/// waits helps execute pending tasks, so recursive use (divide and conquer)
/// cannot deadlock the pool.
class TaskGroup {
 public:
  explicit TaskGroup(Runtime& rt = Runtime::global()) : rt_(rt) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Late safety net only: callers are expected to wait() themselves. Must
  /// never throw — destructors routinely run during the unwinding of some
  /// other exception, and rethrowing a task failure there would terminate.
  /// Any error still captured at this point is intentionally dropped.
  ~TaskGroup() noexcept {
    try {
      wait_nothrow();
    } catch (...) {
      // Helping the pool can surface foreign exceptions (a non-group job
      // that throws through try_run_one); swallow rather than terminate.
    }
  }

  template <typename F>
  void run(F&& f) {
    join_.add();
    rt_.pool().submit(
        [this, body = std::function<void()>(std::forward<F>(f))] {
          try {
            body();
          } catch (...) {
            join_.capture_error(std::current_exception());
          }
          join_.done();
        },
        sched::SubmitHint::auto_);
  }

  /// Wait for all tasks spawned so far; rethrows the first failure.
  void wait() {
    wait_nothrow();
    if (auto err = join_.take_error()) std::rethrow_exception(err);
  }

  [[nodiscard]] std::size_t outstanding() const noexcept {
    return join_.outstanding();
  }

 private:
  void wait_nothrow() { join_.wait(&rt_.pool()); }

  Runtime& rt_;
  sched::JoinLatch join_;
};

/// Run the given callables in parallel and wait for all of them.
template <typename... Fs>
void parallel_invoke(Runtime& rt, Fs&&... fs) {
  TaskGroup group(rt);
  (group.run(std::forward<Fs>(fs)), ...);
  group.wait();
}

template <typename... Fs>
void parallel_invoke(Fs&&... fs) {
  parallel_invoke(Runtime::global(), std::forward<Fs>(fs)...);
}

}  // namespace parc::ptask
