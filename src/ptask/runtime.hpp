// The ParallelTask runtime: owns the compute pool, the interactive pool and
// the (optional) event-dispatch hook that GUI-aware completion handlers are
// delivered through.
//
// In the Java system this corresponds to the ParaTask runtime initialised at
// program start; here it is an ordinary object. Most programs use the
// process-wide instance returned by Runtime::global(), but tests construct
// scoped runtimes with explicit worker counts.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "ptask/cached_pool.hpp"
#include "sched/thread_pool.hpp"

namespace parc::ptask {

class Runtime {
 public:
  struct Config {
    std::size_t workers = sched::default_concurrency();
    CachedThreadPool::Config interactive{};
    /// Locality domains for the compute pool (sched Config::shards: 1 =
    /// single-domain, 0 = auto). Appended so existing designated
    /// initialisers keep compiling.
    std::size_t shards = 1;
  };

  Runtime() : Runtime(Config{}) {}
  explicit Runtime(Config cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The compute pool (work-stealing, one worker per core by default).
  [[nodiscard]] sched::WorkStealingPool& pool() noexcept { return *pool_; }

  /// The interactive pool (elastic, for IO-bound tasks).
  [[nodiscard]] CachedThreadPool& interactive_pool() noexcept {
    return *interactive_;
  }

  /// Register the GUI event dispatcher. `post` must enqueue the closure for
  /// execution on the event-dispatch thread (see parc::gui::EventLoop).
  /// Passing nullptr unregisters; handlers then run inline on the completer.
  void set_event_dispatcher(std::function<void(std::function<void()>)> post);

  /// Deliver `fn` on the EDT if a dispatcher is registered, else run inline.
  void dispatch_to_edt(std::function<void()> fn);

  [[nodiscard]] bool has_event_dispatcher() const;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_->worker_count();
  }

  /// Process-wide default runtime, created on first use with default
  /// configuration. Intentionally leaked (immortal) so that tasks running
  /// during static destruction never touch a destroyed pool.
  static Runtime& global();

 private:
  std::unique_ptr<sched::WorkStealingPool> pool_;
  std::unique_ptr<CachedThreadPool> interactive_;

  mutable std::mutex edt_mutex_;
  std::function<void(std::function<void()>)> edt_post_;  // guarded by edt_mutex_
};

}  // namespace parc::ptask
