#include "ptask/runtime.hpp"

#include "ptask/task_state.hpp"
#include "support/check.hpp"

namespace parc::ptask {

thread_local TaskStateBase* CurrentTask::current_ = nullptr;

Runtime::Runtime(Config cfg)
    : pool_(std::make_unique<sched::WorkStealingPool>(
          sched::WorkStealingPool::Config{cfg.workers, 4, "ptask"})),
      interactive_(std::make_unique<CachedThreadPool>(cfg.interactive)) {}

Runtime::~Runtime() = default;

void Runtime::set_event_dispatcher(
    std::function<void(std::function<void()>)> post) {
  std::scoped_lock lock(edt_mutex_);
  edt_post_ = std::move(post);
}

bool Runtime::has_event_dispatcher() const {
  std::scoped_lock lock(edt_mutex_);
  return static_cast<bool>(edt_post_);
}

void Runtime::dispatch_to_edt(std::function<void()> fn) {
  PARC_CHECK(fn != nullptr);
  std::function<void(std::function<void()>)> post;
  {
    std::scoped_lock lock(edt_mutex_);
    post = edt_post_;
  }
  if (post) {
    post(std::move(fn));
  } else {
    fn();
  }
}

Runtime& Runtime::global() {
  static Runtime* instance = new Runtime();  // immortal by design
  return *instance;
}

}  // namespace parc::ptask
