#include "ptask/runtime.hpp"

#include "obs/trace.hpp"
#include "ptask/task_state.hpp"
#include "support/check.hpp"

namespace parc::ptask {

Runtime::Runtime(Config cfg)
    : pool_(std::make_unique<sched::WorkStealingPool>(
          sched::WorkStealingPool::Config{cfg.workers, 4, "ptask", 4096,
                                          cfg.shards})),
      interactive_(std::make_unique<CachedThreadPool>(cfg.interactive)) {}

Runtime::~Runtime() = default;

void Runtime::set_event_dispatcher(
    std::function<void(std::function<void()>)> post) {
  std::scoped_lock lock(edt_mutex_);
  edt_post_ = std::move(post);
}

bool Runtime::has_event_dispatcher() const {
  std::scoped_lock lock(edt_mutex_);
  return static_cast<bool>(edt_post_);
}

void Runtime::dispatch_to_edt(std::function<void()> fn) {
  PARC_CHECK(fn != nullptr);
  std::function<void(std::function<void()>)> post;
  {
    std::scoped_lock lock(edt_mutex_);
    post = edt_post_;
  }
  if (post) {
    if (obs::tracing()) [[unlikely]] {
      // The hop a completion handler takes from the finishing worker to the
      // GUI event thread — the `notify` half of Parallel Task's GUI story.
      const TaskStateBase* task = CurrentTask::get();
      obs::emit(obs::EventKind::kEdtHop, task != nullptr ? task->obs_id : 0,
                0);
    }
    post(std::move(fn));
  } else {
    fn();
  }
}

Runtime& Runtime::global() {
  static Runtime* instance = new Runtime();  // immortal by design
  return *instance;
}

}  // namespace parc::ptask
