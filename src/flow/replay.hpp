// Trace→DAG replay for channel pipelines (the build_serve_dag idea applied
// to flow): reconstruct a sim::TaskDag from the kChanPush/kChanPop events of
// a traced run, so a pipeline measured once on this host can be replayed
// through sim::simulate at any core count.
//
// Model. Each thread's channel events are segmented into work units:
//
//  - a unit closes at every push; its cost is the time since the previous
//    channel event on the same thread (for a stage: pop → compute → push,
//    so blocked/idle time between a push and the next pop is excluded; for
//    a pure-source thread: the inter-arrival gap);
//  - a unit depends on the previous unit of its thread plus the unit that
//    pushed each element it popped since its thread's last push — element
//    k popped from channel c matches push k of channel c in global time
//    order (exact for FIFO/SPSC edges, an approximation across parallel
//    replicas);
//  - threads that only pop (collectors) contribute zero-cost sink units
//    that carry the dependence structure without inflating T1.
//
// The resulting DAG is topologically ordered by unit end time; dependences
// that a coarse clock would invert are dropped rather than asserted.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/trace.hpp"
#include "sim/machine.hpp"

namespace parc::flow {

struct FlowReplay {
  sim::TaskDag dag;
  std::uint64_t pushes = 0;      ///< kChanPush events consumed
  std::uint64_t pops = 0;        ///< kChanPop events consumed
  std::size_t channels = 0;      ///< distinct channel ids seen
  std::size_t source_units = 0;  ///< push units with no popped inputs
  std::size_t stage_units = 0;   ///< pop→push transform units
  std::size_t sink_units = 0;    ///< pop-only (collector) units
};

[[nodiscard]] FlowReplay build_flow_dag(const obs::TraceDump& dump);

}  // namespace parc::flow
