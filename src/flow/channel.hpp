// flow::Channel<T>: the one bounded hand-off primitive (ISSUE 8).
//
// A fixed-capacity lock-free channel with backpressure. Two ring layouts
// behind one API, chosen at construction:
//
//  - SPSC fast path (`ChannelOptions::spsc`): a Lamport ring — producer owns
//    `tail`, consumer owns `head`, each side caches the other's index so the
//    steady state is one release store per op and *zero* shared RMWs on the
//    ring itself. For single-producer/single-consumer edges (pipeline
//    stages, the serve ingress thread feeding itself).
//  - MPMC striped variant: `stripes` independent Vyukov per-slot-sequence
//    subrings (the conc::MpmcRing protocol); each thread starts its sweep at
//    a thread-affine stripe, so concurrent producers/consumers mostly CAS on
//    different cache lines. For many-to-one (EventLoop posts) and
//    one-to-many (downloader work feed) edges.
//
// Blocking edges ride the completion-core park/wake idiom (DESIGN §3, PR 3):
// a producer hitting a full channel or a consumer hitting an empty one
// behaves exactly like a task waiter —
//
//  - pool-capable threads (WorkStealingPool::current_pool() != nullptr)
//    never park here: a worker parked on a channel word cannot be woken by
//    new pool work, and the peer that would free a slot may itself be queued
//    behind the blocked worker (the bounded-buffer variant of the helping
//    deadlock documented in conc/task_safe.hpp). They `help_while` instead.
//  - everything else spins `sched::detail::kWaiterSpins` and then parks on
//    an epoch word with std::atomic::wait, exactly like Completion::wait.
//
// Wakeup protocol (the Sequencer::advance idiom): every successful pop bumps
// `not_full_epoch_` (release RMW) and notifies; every successful push bumps
// `not_empty_epoch_` and notifies. A waiter snapshots the epoch, re-checks
// the ring, and only then waits on the snapshot — any op that completed
// after the snapshot already changed the word, so the wait falls through
// (std::atomic::wait re-checks the value; the missed-wakeup Dekker handshake
// lives inside the stdlib waiter table, the same place Completion trusts).
// Parked-waiter counters are statistics, not correctness.
//
// close()/poison():
//  - close() is the graceful end-of-stream: pushes are rejected, consumers
//    drain what is buffered and then see `closed`. Contract: close() must
//    happen-after the channel's last push (producer-side close, as in Go);
//    the pop path still re-checks the ring once after observing the closed
//    flag as belt-and-braces against racy callers.
//  - poison() is the error path: the channel closes and buffered elements
//    are *discarded and counted* (`dropped`) on the next pop (drain-on-pop
//    keeps the SPSC single-consumer discipline intact — only a consumer, or
//    a quiescent owner via discard_all(), ever touches the consumer index).
//
// Conservation invariant, asserted across the test suite and bench_flow:
// at quiescence, pushed == popped + dropped, exactly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"
#include "sched/completion.hpp"
#include "sched/thread_pool.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace parc::flow {

enum class PushResult : std::uint8_t { ok, full, closed };
enum class PopResult : std::uint8_t { ok, empty, closed };

struct ChannelOptions {
  /// Ring capacity; rounded up to a power of two (per stripe for MPMC, so
  /// the usable total is stripes * ceil_pow2(capacity / stripes)).
  std::size_t capacity = 256;
  /// MPMC subring count; ignored for SPSC. More stripes spread producer
  /// CAS traffic at the cost of weaker cross-stripe FIFO order.
  std::size_t stripes = 1;
  /// Single-producer/single-consumer fast path. Caller contract: at most
  /// one thread pushes and one pops at any time (close() counts as a
  /// producer-side call; poison()/discard_all() as consumer-side).
  bool spsc = false;
};

/// Point-in-time channel counters. Exact at quiescence; monotone-read
/// approximate while ops are in flight.
struct ChannelStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::uint64_t dropped = 0;   ///< discarded by poison/discard_all
  std::uint64_t producer_blocks = 0;  ///< pushes that entered the slow path
  std::uint64_t consumer_blocks = 0;  ///< pops that entered the slow path
  std::uint64_t producer_parks = 0;   ///< futex parks (never pool threads)
  std::uint64_t consumer_parks = 0;
  std::uint64_t producer_helps = 0;   ///< blocked ops that rode help_while
  std::uint64_t consumer_helps = 0;
  std::uint64_t producer_blocked_ns = 0;  ///< wall time spent full-blocked
  std::uint64_t consumer_blocked_ns = 0;  ///< wall time spent empty-blocked
  std::uint64_t high_water = 0;  ///< max occupancy ever observed by a push
  std::size_t occupancy = 0;
  std::size_t capacity = 0;
  bool closed = false;
  bool poisoned = false;
};

namespace detail {
/// Process-unique channel serial for trace events (kChan* `id`).
inline std::uint64_t next_channel_id() noexcept {
  static std::atomic<std::uint64_t> serial{0};
  return serial.fetch_add(1, std::memory_order_relaxed) + 1;
}

inline constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Stable thread-affine stripe seed, so a given producer keeps hammering
/// the same stripe until it fills.
inline std::size_t stripe_hint() noexcept {
  static thread_local const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h;
}
}  // namespace detail

template <typename T>
class Channel {
  static_assert(std::is_default_constructible_v<T>,
                "Channel ring slots are default-constructed");
  static_assert(std::is_move_assignable_v<T> && std::is_move_constructible_v<T>,
                "Channel transfers elements by move");

 public:
  explicit Channel(ChannelOptions opts = {})
      : spsc_(opts.spsc), id_(detail::next_channel_id()) {
    PARC_CHECK(opts.capacity > 0);
    if (spsc_) {
      const std::size_t cap = detail::ceil_pow2(opts.capacity);
      slots_.resize(cap);
      mask_ = cap - 1;
      capacity_ = cap;
    } else {
      const std::size_t n = opts.stripes == 0 ? 1 : opts.stripes;
      const std::size_t per = detail::ceil_pow2((opts.capacity + n - 1) / n);
      stripes_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        stripes_.push_back(std::make_unique<Stripe>(per));
      }
      capacity_ = per * n;
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // ---- non-blocking ----

  /// Attempt one push; moves from `v` only on `ok`. Never blocks.
  [[nodiscard]] PushResult try_push(T& v) {
    if (closed_.load(std::memory_order_acquire)) return PushResult::closed;
    if (!ring_try_push(v)) {
      // Racing close() while we swept: report closed, not full, so retry
      // loops terminate.
      return closed_.load(std::memory_order_acquire) ? PushResult::closed
                                                     : PushResult::full;
    }
    after_push();
    return PushResult::ok;
  }

  /// Attempt one pop. Buffered elements drain even after close();
  /// `closed` only once the channel is both closed and empty.
  [[nodiscard]] PopResult try_pop(T& out) {
    if (poisoned_.load(std::memory_order_acquire)) {
      discard_all();
      return PopResult::closed;
    }
    if (ring_try_pop(out)) {
      after_pop();
      return PopResult::ok;
    }
    if (closed_.load(std::memory_order_acquire)) {
      // Belt-and-braces: a push that raced close() may have landed between
      // our sweep and the flag load.
      if (ring_try_pop(out)) {
        after_pop();
        return PopResult::ok;
      }
      return PopResult::closed;
    }
    return PopResult::empty;
  }

  // ---- blocking ----

  /// Push, blocking while full. Returns false iff the channel closed (the
  /// element is dropped — by then no consumer is coming for it).
  bool push(T v) {
    PushResult r = try_push(v);
    if (r == PushResult::full) r = push_slow(v);
    return r == PushResult::ok;
  }

  /// Pop, blocking while empty. Returns false iff closed-and-drained.
  bool pop(T& out) {
    PopResult r = try_pop(out);
    if (r == PopResult::empty) r = pop_slow(out);
    return r == PopResult::ok;
  }

  /// Pop with a deadline: `empty` means the deadline passed. With
  /// time_point::max() this is exactly pop(). std::atomic::wait has no
  /// timed form, so a finite deadline parks in bounded sleep slices
  /// (≤ 1 ms) instead of on the epoch futex — timer-grade precision, not
  /// hand-off-grade (the EventLoop only takes this path while delayed
  /// events are pending).
  [[nodiscard]] PopResult try_pop_until(
      T& out, std::chrono::steady_clock::time_point deadline) {
    using clock = std::chrono::steady_clock;
    if (deadline == clock::time_point::max()) {
      PopResult r = try_pop(out);
      if (r == PopResult::empty) r = pop_slow(out);
      return r;
    }
    PopResult r = try_pop(out);
    if (r != PopResult::empty) return r;
    consumer_blocks_.fetch_add(1, std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kChanFull, id_, 1);
    }
    const auto t0 = clock::now();
    for (std::size_t i = 0;
         i < sched::detail::kWaiterSpins && r == PopResult::empty; ++i) {
      ExponentialBackoff::cpu_relax();
      r = try_pop(out);
    }
    while (r == PopResult::empty) {
      const auto now = clock::now();
      if (now >= deadline) break;
      std::this_thread::sleep_for(
          std::min<clock::duration>(std::chrono::milliseconds(1),
                                    deadline - now));
      r = try_pop(out);
    }
    consumer_blocked_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::nanoseconds(clock::now() - t0).count()),
        std::memory_order_relaxed);
    return r;
  }

  // ---- batched ----

  /// Push every element (blocking); returns how many landed — short only
  /// when the channel closed under us.
  std::size_t push_n(std::span<T> items) {
    std::size_t n = 0;
    for (T& v : items) {
      if (!push(std::move(v))) break;
      ++n;
    }
    return n;
  }

  /// Block for at least one element (or close), then greedily take up to
  /// `max` without further blocking. Returns the count appended to `out`;
  /// 0 means closed-and-drained.
  std::size_t pop_n(std::vector<T>& out, std::size_t max) {
    if (max == 0) return 0;
    T v;
    if (!pop(v)) return 0;
    out.push_back(std::move(v));
    std::size_t n = 1;
    while (n < max && try_pop(v) == PopResult::ok) {
      out.push_back(std::move(v));
      ++n;
    }
    return n;
  }

  // ---- lifecycle ----

  /// Graceful end-of-stream. Must happen-after the last push (producer-side
  /// close). Idempotent; wakes every parked waiter on both edges.
  void close() noexcept { close_impl(false); }

  /// Error-path close: buffered elements are discarded and counted as
  /// `dropped` by the next pop (or discard_all()). Any thread may call it.
  void poison() noexcept {
    poisoned_.store(true, std::memory_order_release);
    close_impl(true);
  }

  /// Drain-and-count every buffered element. Consumer-side (or quiescent —
  /// e.g. Pipeline::wait after joining its stage threads). Returns the
  /// number discarded.
  std::size_t discard_all() {
    std::size_t n = 0;
    T tmp;
    while (ring_try_pop(tmp)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      ++n;
    }
    if (n != 0) {
      not_full_epoch_.fetch_add(1, std::memory_order_release);
      not_full_epoch_.notify_all();
    }
    return n;
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }

  // ---- introspection ----

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  [[nodiscard]] std::size_t occupancy() const noexcept {
    const std::uint64_t in = pushed_.load(std::memory_order_relaxed);
    const std::uint64_t gone = popped_.load(std::memory_order_relaxed) +
                               dropped_.load(std::memory_order_relaxed);
    return in > gone ? static_cast<std::size_t>(in - gone) : 0;
  }

  [[nodiscard]] ChannelStats stats() const {
    ChannelStats s;
    s.pushed = pushed_.load(std::memory_order_relaxed);
    s.popped = popped_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.producer_blocks = producer_blocks_.load(std::memory_order_relaxed);
    s.consumer_blocks = consumer_blocks_.load(std::memory_order_relaxed);
    s.producer_parks = producer_parks_.load(std::memory_order_relaxed);
    s.consumer_parks = consumer_parks_.load(std::memory_order_relaxed);
    s.producer_helps = producer_helps_.load(std::memory_order_relaxed);
    s.consumer_helps = consumer_helps_.load(std::memory_order_relaxed);
    s.producer_blocked_ns =
        producer_blocked_ns_.load(std::memory_order_relaxed);
    s.consumer_blocked_ns =
        consumer_blocked_ns_.load(std::memory_order_relaxed);
    s.high_water = high_water_.load(std::memory_order_relaxed);
    s.occupancy = occupancy();
    s.capacity = capacity_;
    s.closed = closed();
    s.poisoned = poisoned();
    return s;
  }

 private:
  // One Vyukov subring: per-slot sequence numbers arbitrate producers and
  // consumers without a shared head/tail pair (conc::MpmcRing protocol).
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };
  struct Stripe {
    explicit Stripe(std::size_t cap) : slots(cap), mask(cap - 1) {
      for (std::size_t i = 0; i < cap; ++i) {
        slots[i].sequence.store(i, std::memory_order_relaxed);
      }
    }
    bool try_push(T& v) {
      std::size_t pos = enqueue_pos.load(std::memory_order_relaxed);
      for (;;) {
        Slot* slot = &slots[pos & mask];
        const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
        const auto dif = static_cast<std::intptr_t>(seq) -
                         static_cast<std::intptr_t>(pos);
        if (dif == 0) {
          if (enqueue_pos.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
            slot->value = std::move(v);
            slot->sequence.store(pos + 1, std::memory_order_release);
            return true;
          }
        } else if (dif < 0) {
          return false;  // a full lap behind: stripe is full
        } else {
          pos = enqueue_pos.load(std::memory_order_relaxed);
        }
      }
    }
    bool try_pop(T& out) {
      std::size_t pos = dequeue_pos.load(std::memory_order_relaxed);
      for (;;) {
        Slot* slot = &slots[pos & mask];
        const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
        const auto dif = static_cast<std::intptr_t>(seq) -
                         static_cast<std::intptr_t>(pos + 1);
        if (dif == 0) {
          if (dequeue_pos.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
            out = std::move(slot->value);
            slot->sequence.store(pos + mask + 1, std::memory_order_release);
            return true;
          }
        } else if (dif < 0) {
          return false;  // slot not yet published: stripe is empty
        } else {
          pos = dequeue_pos.load(std::memory_order_relaxed);
        }
      }
    }
    std::vector<Slot> slots;
    std::size_t mask;
    alignas(kCacheLineSize) std::atomic<std::size_t> enqueue_pos{0};
    alignas(kCacheLineSize) std::atomic<std::size_t> dequeue_pos{0};
  };

  bool ring_try_push(T& v) {
    if (spsc_) {
      const std::size_t t = tail_.load(std::memory_order_relaxed);
      if (t - head_cache_ > mask_) {
        head_cache_ = head_.load(std::memory_order_acquire);
        if (t - head_cache_ > mask_) return false;
      }
      slots_[t & mask_] = std::move(v);
      tail_.store(t + 1, std::memory_order_release);
      return true;
    }
    const std::size_t n = stripes_.size();
    const std::size_t start = detail::stripe_hint();
    for (std::size_t k = 0; k < n; ++k) {
      if (stripes_[(start + k) % n]->try_push(v)) return true;
    }
    return false;
  }

  bool ring_try_pop(T& out) {
    if (spsc_) {
      const std::size_t h = head_.load(std::memory_order_relaxed);
      if (h == tail_cache_) {
        tail_cache_ = tail_.load(std::memory_order_acquire);
        if (h == tail_cache_) return false;
      }
      out = std::move(slots_[h & mask_]);
      head_.store(h + 1, std::memory_order_release);
      return true;
    }
    const std::size_t n = stripes_.size();
    const std::size_t start = detail::stripe_hint();
    for (std::size_t k = 0; k < n; ++k) {
      if (stripes_[(start + k) % n]->try_pop(out)) return true;
    }
    return false;
  }

  void after_push() noexcept {
    const std::uint64_t in =
        pushed_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t gone = popped_.load(std::memory_order_relaxed) +
                               dropped_.load(std::memory_order_relaxed);
    const std::uint64_t occ = in > gone ? in - gone : 0;
    std::uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (occ > hw && !high_water_.compare_exchange_weak(
                           hw, occ, std::memory_order_relaxed)) {
    }
    not_empty_epoch_.fetch_add(1, std::memory_order_release);
    not_empty_epoch_.notify_all();
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kChanPush, id_, occ);
    }
  }

  void after_pop() noexcept {
    popped_.fetch_add(1, std::memory_order_relaxed);
    not_full_epoch_.fetch_add(1, std::memory_order_release);
    not_full_epoch_.notify_all();
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kChanPop, id_, occupancy());
    }
  }

  PushResult push_slow(T& v) {
    using clock = std::chrono::steady_clock;
    producer_blocks_.fetch_add(1, std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kChanFull, id_, 0);
    }
    const auto t0 = clock::now();
    PushResult r = PushResult::full;
    if (auto* pool = sched::WorkStealingPool::current_pool()) {
      producer_helps_.fetch_add(1, std::memory_order_relaxed);
      pool->help_while([&] {
        r = try_push(v);
        return r == PushResult::full;
      });
    } else {
      for (std::size_t i = 0;
           i < sched::detail::kWaiterSpins && r == PushResult::full; ++i) {
        ExponentialBackoff::cpu_relax();
        r = try_push(v);
      }
      while (r == PushResult::full) {
        const std::uint32_t e =
            not_full_epoch_.load(std::memory_order_acquire);
        r = try_push(v);
        if (r != PushResult::full) break;
        producer_parks_.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kWaiterPark, id_, 0);
        }
        not_full_epoch_.wait(e, std::memory_order_acquire);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kWaiterWake, id_, 0);
        }
        r = try_push(v);
      }
    }
    producer_blocked_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::nanoseconds(clock::now() - t0).count()),
        std::memory_order_relaxed);
    return r;
  }

  PopResult pop_slow(T& out) {
    using clock = std::chrono::steady_clock;
    consumer_blocks_.fetch_add(1, std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kChanFull, id_, 1);
    }
    const auto t0 = clock::now();
    PopResult r = PopResult::empty;
    if (auto* pool = sched::WorkStealingPool::current_pool()) {
      consumer_helps_.fetch_add(1, std::memory_order_relaxed);
      pool->help_while([&] {
        r = try_pop(out);
        return r == PopResult::empty;
      });
    } else {
      for (std::size_t i = 0;
           i < sched::detail::kWaiterSpins && r == PopResult::empty; ++i) {
        ExponentialBackoff::cpu_relax();
        r = try_pop(out);
      }
      while (r == PopResult::empty) {
        const std::uint32_t e =
            not_empty_epoch_.load(std::memory_order_acquire);
        r = try_pop(out);
        if (r != PopResult::empty) break;
        consumer_parks_.fetch_add(1, std::memory_order_relaxed);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kWaiterPark, id_, 1);
        }
        not_empty_epoch_.wait(e, std::memory_order_acquire);
        if (obs::tracing()) [[unlikely]] {
          obs::emit(obs::EventKind::kWaiterWake, id_, 1);
        }
        r = try_pop(out);
      }
    }
    consumer_blocked_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::nanoseconds(clock::now() - t0).count()),
        std::memory_order_relaxed);
    return r;
  }

  void close_impl(bool poison) noexcept {
    const bool was = closed_.exchange(true, std::memory_order_acq_rel);
    // Wake both edges even when already closed: poison-after-close must
    // still kick parked consumers into their drain-and-exit path.
    not_full_epoch_.fetch_add(1, std::memory_order_release);
    not_full_epoch_.notify_all();
    not_empty_epoch_.fetch_add(1, std::memory_order_release);
    not_empty_epoch_.notify_all();
    if (!was && obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kChanClosed, id_, poison ? 1 : 0);
    }
  }

  const bool spsc_;
  const std::uint64_t id_;
  std::size_t capacity_ = 0;

  // SPSC ring (unused when striped). Producer side: tail_ + its cached view
  // of head_; consumer side: head_ + cached tail_. The caches are plain
  // fields written only by their own side.
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;

  // MPMC stripes (unused when spsc).
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Park/wake epochs (Sequencer::advance idiom) + lifecycle flags.
  alignas(kCacheLineSize) std::atomic<std::uint32_t> not_full_epoch_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> not_empty_epoch_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> poisoned_{false};

  // Counters. pushed_ is producer-side, popped_/dropped_ consumer-side.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> pushed_{0};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> high_water_{0};
  std::atomic<std::uint64_t> producer_blocks_{0};
  std::atomic<std::uint64_t> consumer_blocks_{0};
  std::atomic<std::uint64_t> producer_parks_{0};
  std::atomic<std::uint64_t> consumer_parks_{0};
  std::atomic<std::uint64_t> producer_helps_{0};
  std::atomic<std::uint64_t> consumer_helps_{0};
  std::atomic<std::uint64_t> producer_blocked_ns_{0};
  std::atomic<std::uint64_t> consumer_blocked_ns_{0};
};

}  // namespace parc::flow
