// flow::Pipeline: stages connected by bounded channels (ISSUE 8).
//
// A pipeline is a chain of transform stages, each running on dedicated
// threads, connected by flow::Channel edges that provide backpressure end to
// end: a slow stage fills its inbox, which blocks the stage feeding it, all
// the way back to Pipeline::push. Stage threads are *dedicated*
// std::threads, never long-running pool jobs — a pool job blocked on a full
// channel could have its consumer nested under it by cooperative helping
// (the bounded-buffer deadlock documented in conc/task_safe.hpp). The pool
// is used only for finite leaf fan-out inside a stage (`pool_batch`), where
// helping is safe because leaf jobs never touch a channel.
//
// Stage shapes. A stage callable takes the element by value/rvalue and
// returns either `Out` (map) or `std::optional<Out>` (filter / stateful
// accumulate: nullopt emits nothing). A callable with a `flush()` member is
// called once per replica after its input closes, to emit held state (the
// pipesort merge stage's leftover run). Every replica owns a private copy
// of the callable, so stateful stages need no locking.
//
// Stage fusion is a compile-time rule: adjacent stages added with
// `.then(fn)` (a bare callable, no options, no flush() member) fuse into
// one materialized stage — function composition, no intermediate channel,
// no extra thread. Wrapping a callable in `flow::stage(fn, opts)` (or
// giving it a flush() member) forces a materialization boundary.
// `Pipeline::stage_count()` reports materialized stages so tests can assert
// the rule.
//
// Per-stage parallelism: `StageOptions::parallelism` runs N replicas
// popping one shared inbox (element order across replicas is not
// preserved); `StageOptions::pool_batch` keeps one runner thread that pops
// batches and fans each batch out to the scheduler via submit_n with
// shard-affine routing (PR 6), preserving order.
//
// Error propagation: a throwing stage captures the first error
// (sched::FirstError), poisons both its channels, and the poison cascades —
// upstream pushes fail and poison their own inboxes, downstream consumers
// drain-and-exit. Pipeline::wait() joins every thread, sweeps all channels
// (counting stragglers as dropped, keeping pushed == popped + dropped
// exact), then rethrows.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "flow/channel.hpp"
#include "obs/trace.hpp"
#include "sched/task_graph.hpp"
#include "sched/thread_pool.hpp"
#include "support/check.hpp"

namespace parc::flow {

struct PipelineOptions {
  /// Default capacity for every channel without a per-stage override.
  std::size_t capacity = 256;
  /// Required for pool_batch stages; unused otherwise.
  sched::WorkStealingPool* pool = nullptr;
  /// Promise that Pipeline::push/try_push/push_n are called from at most
  /// one thread at a time — lets a serial first stage get the SPSC ring.
  bool single_producer = false;
};

struct StageOptions {
  /// Replica threads popping this stage's inbox. >1 stops preserving
  /// element order across the stage.
  std::size_t parallelism = 1;
  /// This stage's inbox capacity; 0 = the pipeline default.
  std::size_t capacity = 0;
  /// >0: one runner thread pops batches of this size and fans each batch
  /// out to the pool (submit_n, shard-affine), pushing results in order.
  /// The callable must be safe to invoke concurrently (stateless).
  std::size_t pool_batch = 0;
  /// Locality domain for pool_batch fan-out; kAnyShard = stage index mod
  /// the pool's shard count.
  std::size_t shard = sched::WorkStealingPool::kAnyShard;
  std::string name;
};

/// Wrap a callable to force a materialization boundary and attach options.
template <typename F>
struct Staged {
  F fn;
  StageOptions opts;
};

template <typename F>
[[nodiscard]] Staged<std::decay_t<F>> stage(F&& fn, StageOptions opts = {}) {
  return {std::forward<F>(fn), std::move(opts)};
}

/// Element type of for_each pipelines (no collected output).
struct Unit {};

/// Per-stage snapshot: the stage's *input* channel tells the backpressure
/// story (occupancy/high-water/blocked time of whoever feeds it).
struct StageStats {
  std::string name;
  std::size_t parallelism = 1;
  ChannelStats input;
};

struct PipelineStats {
  std::vector<StageStats> stages;  ///< transform stages, then the sink
};

namespace detail {

template <typename T>
struct emit_of {
  using type = T;
  static constexpr bool filtered = false;
};
template <typename U>
struct emit_of<std::optional<U>> {
  using type = U;
  static constexpr bool filtered = true;
};

template <typename G>
inline constexpr bool has_flush_v = requires(G& g) { g.flush(); };

/// One replica's private pair of callables (fresh state per replica).
template <typename H, typename C>
struct ReplicaFns {
  std::function<std::optional<C>(H&&)> fn;
  std::function<std::optional<C>()> flush;  ///< null when the stage has none
};

/// Build a replica factory from a user callable: each call hands out
/// closures over a *fresh copy* of `g`, so stateful stages never share.
template <typename H, typename G>
auto make_factory(G g) {
  using R = std::invoke_result_t<G&, H&&>;
  using C = typename emit_of<R>::type;
  return std::function<ReplicaFns<H, C>()>([g] {
    auto st = std::make_shared<G>(g);
    ReplicaFns<H, C> rf;
    rf.fn = [st](H&& h) -> std::optional<C> {
      if constexpr (emit_of<R>::filtered) {
        return (*st)(std::move(h));
      } else {
        return std::optional<C>((*st)(std::move(h)));
      }
    };
    if constexpr (has_flush_v<G>) {
      rf.flush = [st]() -> std::optional<C> {
        using FR = decltype(st->flush());
        if constexpr (emit_of<FR>::filtered) {
          return st->flush();
        } else {
          return std::optional<C>(st->flush());
        }
      };
    }
    return rf;
  });
}

/// Fuse: compose a downstream bare callable into an existing factory.
/// Only reachable when neither side has flush (compile-time rule).
template <typename H, typename C, typename G>
auto fuse_factory(std::function<ReplicaFns<H, C>()> pf, G g) {
  using R = std::invoke_result_t<G&, C&&>;
  using N = typename emit_of<R>::type;
  auto gf = make_factory<C>(std::move(g));
  return std::function<ReplicaFns<H, N>()>([pf, gf] {
    auto a = pf();
    auto b = gf();
    ReplicaFns<H, N> rf;
    rf.fn = [a, b](H&& h) -> std::optional<N> {
      auto r = a.fn(std::move(h));
      if (!r) return std::nullopt;
      return b.fn(std::move(*r));
    };
    return rf;
  });
}

struct StageRecord {
  std::string name;
  std::size_t parallelism = 1;
  std::function<ChannelStats()> input_stats;
};

struct PipelineCore {
  PipelineOptions opts;
  std::vector<std::thread> threads;
  std::vector<StageRecord> stages;  ///< materialized transform stages
  std::vector<StageRecord> sinks;   ///< collector / for_each record
  std::vector<std::function<std::size_t()>> sweepers;
  std::vector<std::function<void()>> poisoners;
  sched::FirstError error;

  ~PipelineCore() {
    // Abandoned builder / facade destroyed without wait(): unblock every
    // stage before joining so teardown cannot hang.
    bool live = false;
    for (auto& t : threads) live = live || t.joinable();
    if (live) {
      for (auto& p : poisoners) p();
      for (auto& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  }
};

template <typename T>
std::shared_ptr<Channel<T>> make_channel(const std::shared_ptr<PipelineCore>& core,
                                         ChannelOptions co) {
  auto ch = std::make_shared<Channel<T>>(co);
  core->sweepers.push_back([ch] { return ch->discard_all(); });
  core->poisoners.push_back([ch] { ch->poison(); });
  return ch;
}

/// Launch one materialized stage: `parallelism` replica threads (or one
/// pool_batch runner per replica) popping `in`, pushing `out`; the last
/// replica out closes the output.
template <typename H, typename C>
void start_stage(const std::shared_ptr<PipelineCore>& core,
                 std::shared_ptr<Channel<H>> in,
                 std::shared_ptr<Channel<C>> out,
                 const std::function<ReplicaFns<H, C>()>& factory,
                 const StageOptions& o, const std::string& name) {
  const std::size_t par = o.parallelism == 0 ? 1 : o.parallelism;
  auto remaining = std::make_shared<std::atomic<std::size_t>>(par);
  const std::size_t batch = o.pool_batch;
  const std::size_t shard_opt = o.shard;
  const std::size_t stage_index = core->stages.size();
  if (batch > 0) {
    PARC_CHECK_MSG(core->opts.pool != nullptr,
                   "pool_batch stage requires PipelineOptions::pool");
  }
  for (std::size_t r = 0; r < par; ++r) {
    auto rf = factory();  // private callable state per replica
    std::string label = par > 1 ? name + "-" + std::to_string(r) : name;
    core->threads.emplace_back([core, in, out, rf = std::move(rf),
                                remaining, batch, shard_opt, stage_index,
                                label = std::move(label)]() mutable {
      obs::label_thread(label);
      bool clean = true;
      try {
        if (batch == 0) {
          H item;
          while (in->pop(item)) {
            auto res = rf.fn(std::move(item));
            if (res && !out->push(std::move(*res))) {
              // Downstream closed under us: stop feeding, stop upstream.
              in->poison();
              clean = false;
              break;
            }
          }
        } else {
          auto* pool = core->opts.pool;
          const std::size_t shard =
              shard_opt != sched::WorkStealingPool::kAnyShard
                  ? shard_opt % pool->shard_count()
                  : stage_index % pool->shard_count();
          std::vector<H> items;
          items.reserve(batch);
          while (clean) {
            items.clear();
            if (in->pop_n(items, batch) == 0) break;
            const std::size_t n = items.size();
            std::vector<std::optional<C>> results(n);
            sched::JoinLatch join;
            join.add(n);
            pool->submit_n(
                n,
                [&](std::size_t i) {
                  return [&rf, &items, &results, &join, core, i] {
                    try {
                      results[i] = rf.fn(std::move(items[i]));
                    } catch (...) {
                      core->error.capture(std::current_exception());
                    }
                    join.done();
                  };
                },
                sched::SubmitHint::remote, shard);
            // Leaf jobs never touch a channel, so helping here is safe.
            join.wait(pool);
            if (core->error.has_error()) {
              in->poison();
              out->poison();
              clean = false;
              break;
            }
            for (auto& res : results) {
              if (res && !out->push(std::move(*res))) {
                in->poison();
                clean = false;
                break;
              }
            }
          }
        }
        if (clean && rf.flush) {
          if (auto tail = rf.flush()) (void)out->push(std::move(*tail));
        }
      } catch (...) {
        core->error.capture(std::current_exception());
        in->poison();
        out->poison();
      }
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        out->close();
      }
    });
  }
}

template <typename C>
void start_collect(const std::shared_ptr<PipelineCore>& core,
                   std::shared_ptr<Channel<C>> in,
                   std::shared_ptr<std::vector<C>> results) {
  core->sinks.push_back(
      {"collect", 1, [in] { return in->stats(); }});
  core->threads.emplace_back([core, in, results] {
    obs::label_thread("flow-collect");
    try {
      C v;
      while (in->pop(v)) results->push_back(std::move(v));
    } catch (...) {
      core->error.capture(std::current_exception());
      in->poison();
    }
  });
}

template <typename C, typename Sink>
void start_for_each(const std::shared_ptr<PipelineCore>& core,
                    std::shared_ptr<Channel<C>> in, Sink sink,
                    std::size_t parallelism) {
  const std::size_t par = parallelism == 0 ? 1 : parallelism;
  core->sinks.push_back(
      {"for_each", par, [in] { return in->stats(); }});
  for (std::size_t r = 0; r < par; ++r) {
    core->threads.emplace_back([core, in, sink]() mutable {
      obs::label_thread("flow-sink");
      try {
        C v;
        while (in->pop(v)) sink(std::move(v));
      } catch (...) {
        core->error.capture(std::current_exception());
        in->poison();
      }
    });
  }
}

}  // namespace detail

/// The running pipeline handle returned by collect()/for_each(). Push from
/// the producing side, close() when the stream ends, wait() for results.
template <typename In, typename Out>
class Pipeline {
 public:
  Pipeline(std::shared_ptr<detail::PipelineCore> core,
           std::shared_ptr<Channel<In>> source,
           std::shared_ptr<std::vector<Out>> results)
      : core_(std::move(core)),
        source_(std::move(source)),
        results_(std::move(results)) {}

  /// Blocking feed; false once the pipeline closed/poisoned.
  bool push(In v) { return source_->push(std::move(v)); }
  [[nodiscard]] PushResult try_push(In& v) { return source_->try_push(v); }
  std::size_t push_n(std::span<In> items) { return source_->push_n(items); }

  /// End of input. Cascades stage by stage as each drains.
  void close() { source_->close(); }
  /// Abort: every channel drains-and-drops, stages exit promptly.
  void poison() { source_->poison(); }

  /// Close (idempotent), join every stage thread, sweep all channels so
  /// pushed == popped + dropped holds exactly, rethrow the first stage
  /// error, and hand back the collected output.
  std::vector<Out> wait() {
    source_->close();
    for (auto& t : core_->threads) {
      if (t.joinable()) t.join();
    }
    std::uint64_t swept = 0;
    for (auto& sweep : core_->sweepers) swept += sweep();
    swept_dropped_ += swept;
    if (auto e = core_->error.take()) std::rethrow_exception(e);
    return results_ ? std::move(*results_) : std::vector<Out>{};
  }

  /// Materialized transform stages (fusion collapses bare .then chains).
  [[nodiscard]] std::size_t stage_count() const {
    return core_->stages.size();
  }

  [[nodiscard]] ChannelStats source_stats() const { return source_->stats(); }

  [[nodiscard]] PipelineStats stats() const {
    PipelineStats ps;
    for (const auto& rec : core_->stages) {
      ps.stages.push_back({rec.name, rec.parallelism, rec.input_stats()});
    }
    for (const auto& rec : core_->sinks) {
      ps.stages.push_back({rec.name, rec.parallelism, rec.input_stats()});
    }
    return ps;
  }

  /// Elements discarded by the post-join sweep (error/poison paths).
  [[nodiscard]] std::uint64_t swept_dropped() const { return swept_dropped_; }

 private:
  std::shared_ptr<detail::PipelineCore> core_;
  std::shared_ptr<Channel<In>> source_;
  std::shared_ptr<std::vector<Out>> results_;
  std::uint64_t swept_dropped_ = 0;
};

/// Builder type-state: In = pipeline input; Head = element type of the
/// channel feeding the pending (not yet materialized) stage group; Cur =
/// the pending group's output type; HasPending/Open drive the compile-time
/// fusion rule (Open: the group still accepts bare-callable fusion).
template <typename In, typename Head, typename Cur, bool HasPending,
          bool Open>
class PipelineBuilder {
 public:
  explicit PipelineBuilder(PipelineOptions opts)
      : core_(std::make_shared<detail::PipelineCore>()) {
    core_->opts = std::move(opts);
  }

  PipelineBuilder(std::shared_ptr<detail::PipelineCore> core,
                  std::shared_ptr<Channel<In>> source,
                  std::shared_ptr<Channel<Head>> head,
                  std::function<detail::ReplicaFns<Head, Cur>()> factory,
                  StageOptions pending_opts)
      : core_(std::move(core)),
        source_(std::move(source)),
        head_(std::move(head)),
        factory_(std::move(factory)),
        pending_opts_(std::move(pending_opts)) {}

  /// Bare callable: fuses into the pending group when both sides allow it
  /// (compile-time rule), else starts/extends a materialized boundary.
  template <typename G>
  [[nodiscard]] auto then(G g) && {
    using GF = std::decay_t<G>;
    if constexpr (!HasPending) {
      auto f = detail::make_factory<Head>(GF(std::move(g)));
      using C = typename factory_emit<decltype(f)>::type;
      return PipelineBuilder<In, Head, C, true, !detail::has_flush_v<GF>>(
          std::move(core_), std::move(source_), std::move(head_),
          std::move(f), StageOptions{});
    } else if constexpr (Open && !detail::has_flush_v<GF>) {
      auto f = detail::fuse_factory<Head, Cur>(std::move(factory_),
                                               GF(std::move(g)));
      using C = typename factory_emit<decltype(f)>::type;
      return PipelineBuilder<In, Head, C, true, true>(
          std::move(core_), std::move(source_), std::move(head_),
          std::move(f), std::move(pending_opts_));
    } else {
      return std::move(*this)
          .then(Staged<GF>{std::move(g), StageOptions{}});
    }
  }

  /// Staged callable: always a materialization boundary for the pending
  /// group; the new group is still open to bare-callable fusion unless the
  /// callable carries flush state.
  template <typename G>
  [[nodiscard]] auto then(Staged<G> s) && {
    auto f = detail::make_factory<Cur>(std::move(s.fn));
    using C = typename factory_emit<decltype(f)>::type;
    std::shared_ptr<Channel<Cur>> head;
    if constexpr (HasPending) {
      head = materialize(effective_par(s.opts), s.opts.capacity);
    } else {
      head = ensure_source_for(effective_par(s.opts), s.opts.capacity);
    }
    return PipelineBuilder<In, Cur, C, true, !detail::has_flush_v<G>>(
        std::move(core_), std::move(source_), std::move(head), std::move(f),
        std::move(s.opts));
  }

  /// Terminal: single collector thread gathers the last stage's output.
  [[nodiscard]] Pipeline<In, Cur> collect() && {
    std::shared_ptr<Channel<Cur>> last;
    if constexpr (HasPending) {
      last = materialize(1, 0);
    } else {
      last = ensure_source();
    }
    auto results = std::make_shared<std::vector<Cur>>();
    detail::start_collect(core_, last, results);
    return Pipeline<In, Cur>(std::move(core_), std::move(source_),
                             std::move(results));
  }

  /// Terminal: apply `sink` to each element, collect nothing.
  template <typename Sink>
  [[nodiscard]] Pipeline<In, Unit> for_each(Sink sink,
                                            std::size_t parallelism = 1) && {
    std::shared_ptr<Channel<Cur>> last;
    if constexpr (HasPending) {
      last = materialize(parallelism, 0);
    } else {
      last = ensure_source();
    }
    detail::start_for_each(core_, last, std::move(sink), parallelism);
    return Pipeline<In, Unit>(std::move(core_), std::move(source_), nullptr);
  }

 private:
  template <typename, typename, typename, bool, bool>
  friend class PipelineBuilder;

  template <typename F>
  struct factory_emit;
  template <typename H, typename C>
  struct factory_emit<std::function<detail::ReplicaFns<H, C>()>> {
    using type = C;
  };

  static std::size_t effective_par(const StageOptions& o) {
    return o.parallelism == 0 ? 1 : o.parallelism;
  }

  /// Create the source channel on first need. SPSC only under the
  /// single_producer promise with a serial first consumer.
  std::shared_ptr<Channel<In>> ensure_source() {
    return ensure_source_for(1, 0);
  }

  std::shared_ptr<Channel<In>> ensure_source_for(std::size_t consumer_par,
                                                 std::size_t cap) {
    if (!source_) {
      ChannelOptions co;
      co.capacity = cap != 0 ? cap : core_->opts.capacity;
      co.spsc = core_->opts.single_producer && consumer_par == 1;
      co.stripes =
          co.spsc ? 1 : std::min<std::size_t>(4, std::max<std::size_t>(
                                                     1, consumer_par));
      source_ = detail::make_channel<In>(core_, co);
    }
    return source_;
  }

  /// Launch the pending group; returns its output channel (the next
  /// group's inbox, sized for `next_par` consumers).
  std::shared_ptr<Channel<Cur>> materialize(std::size_t next_par,
                                            std::size_t next_cap) {
    static_assert(HasPending);
    const std::size_t par = effective_par(pending_opts_);
    if constexpr (std::is_same_v<Head, In>) {
      if (!head_) head_ = ensure_source_for(par, pending_opts_.capacity);
    }
    PARC_CHECK(head_ != nullptr);
    ChannelOptions co;
    co.capacity = next_cap != 0 ? next_cap : core_->opts.capacity;
    // Each replica (or pool_batch runner) is a producer on the out edge.
    co.spsc = par == 1 && next_par == 1;
    co.stripes = co.spsc ? 1
                         : std::min<std::size_t>(
                               4, std::max(par, std::max<std::size_t>(
                                                    1, next_par)));
    auto out = detail::make_channel<Cur>(core_, co);
    std::string name = pending_opts_.name.empty()
                           ? "flow-stage" + std::to_string(core_->stages.size())
                           : pending_opts_.name;
    core_->stages.push_back(
        {name, par, [in = head_] { return in->stats(); }});
    detail::start_stage<Head, Cur>(core_, head_, out, factory_,
                                   pending_opts_, name);
    return out;
  }

  std::shared_ptr<detail::PipelineCore> core_;
  std::shared_ptr<Channel<In>> source_;
  std::shared_ptr<Channel<Head>> head_;
  std::function<detail::ReplicaFns<Head, Cur>()> factory_;
  StageOptions pending_opts_;
};

/// Entry point: flow::pipeline<T>(opts).then(...).collect().
template <typename In>
[[nodiscard]] auto pipeline(PipelineOptions opts = {}) {
  return PipelineBuilder<In, In, In, false, false>(std::move(opts));
}

}  // namespace parc::flow
