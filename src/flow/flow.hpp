// parc::flow — bounded channels with backpressure and the pipelines built
// on them (ISSUE 8). One include for consumers:
//
//   flow::Channel<T>   fixed-capacity SPSC/MPMC channel, park/wake blocking
//   flow::pipeline<T>  staged dataflow builder (fusion, per-stage
//                      parallelism, pool fan-out)
//   flow::build_flow_dag  traced run → sim::TaskDag replay
#pragma once

#include "flow/channel.hpp"
#include "flow/pipeline.hpp"
#include "flow/replay.hpp"
