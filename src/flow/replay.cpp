#include "flow/replay.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

namespace parc::flow {

namespace {

struct ChanRef {
  std::size_t track = 0;
  std::size_t idx = 0;  ///< event index within the track
  std::uint64_t t = 0;
};

struct Unit {
  double cost_s = 0.0;
  std::uint64_t end_t = 0;
  std::int64_t track_prev = -1;  ///< unit index of this thread's previous unit
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pop_refs;  ///< (chan, seq)
  bool is_sink = false;
};

}  // namespace

FlowReplay build_flow_dag(const obs::TraceDump& dump) {
  using obs::EventKind;
  FlowReplay out;

  // Pass 1: per channel, order pushes and pops by time so element k's pop
  // matches push k (FIFO). seq_of[track][idx] holds the assigned sequence.
  std::map<std::uint64_t, std::vector<ChanRef>> pushes;
  std::map<std::uint64_t, std::vector<ChanRef>> pops;
  std::vector<std::vector<std::uint64_t>> seq_of(dump.tracks.size());
  std::vector<bool> track_has_push(dump.tracks.size(), false);
  for (std::size_t ti = 0; ti < dump.tracks.size(); ++ti) {
    const auto& track = dump.tracks[ti];
    seq_of[ti].assign(track.events.size(), 0);
    for (std::size_t ei = 0; ei < track.events.size(); ++ei) {
      const obs::Event& e = track.events[ei];
      if (e.kind == EventKind::kChanPush) {
        pushes[e.id].push_back({ti, ei, e.t_ns});
        track_has_push[ti] = true;
      } else if (e.kind == EventKind::kChanPop) {
        pops[e.id].push_back({ti, ei, e.t_ns});
      }
    }
  }
  out.channels = pushes.size();
  auto assign_seq = [&](std::map<std::uint64_t, std::vector<ChanRef>>& side) {
    for (auto& [chan, refs] : side) {
      std::stable_sort(refs.begin(), refs.end(),
                       [](const ChanRef& a, const ChanRef& b) {
                         return a.t < b.t;
                       });
      for (std::size_t s = 0; s < refs.size(); ++s) {
        seq_of[refs[s].track][refs[s].idx] = s;
      }
    }
  };
  assign_seq(pushes);
  assign_seq(pops);

  // Pass 2: walk each track, closing a unit at every push (or at every pop
  // on pop-only collector tracks).
  std::vector<Unit> units;
  // producer_unit[chan][seq] = unit index that pushed that element.
  std::map<std::uint64_t, std::vector<std::int64_t>> producer_unit;
  for (const auto& [chan, refs] : pushes) {
    producer_unit[chan].assign(refs.size(), -1);
  }
  for (std::size_t ti = 0; ti < dump.tracks.size(); ++ti) {
    const auto& track = dump.tracks[ti];
    std::int64_t last_unit = -1;
    std::uint64_t last_t = 0;
    bool last_t_valid = false;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
    for (std::size_t ei = 0; ei < track.events.size(); ++ei) {
      const obs::Event& e = track.events[ei];
      if (e.kind == EventKind::kChanPush) {
        ++out.pushes;
        Unit u;
        u.cost_s = last_t_valid && e.t_ns > last_t
                       ? static_cast<double>(e.t_ns - last_t) * 1e-9
                       : 0.0;
        u.end_t = e.t_ns;
        u.track_prev = last_unit;
        u.pop_refs = std::move(pending);
        pending.clear();
        units.push_back(std::move(u));
        last_unit = static_cast<std::int64_t>(units.size() - 1);
        producer_unit[e.id][seq_of[ti][ei]] = last_unit;
        last_t = e.t_ns;
        last_t_valid = true;
      } else if (e.kind == EventKind::kChanPop) {
        ++out.pops;
        if (track_has_push[ti]) {
          pending.emplace_back(e.id, seq_of[ti][ei]);
          last_t = e.t_ns;
          last_t_valid = true;
        } else {
          // Collector thread: zero-cost unit carrying the dependence.
          Unit u;
          u.end_t = e.t_ns;
          u.track_prev = last_unit;
          u.pop_refs = {{e.id, seq_of[ti][ei]}};
          u.is_sink = true;
          units.push_back(std::move(u));
          last_unit = static_cast<std::int64_t>(units.size() - 1);
        }
      }
    }
    // Popped-but-never-emitted elements at track end (held stage state,
    // poison drains): no unit — their cost is unknowable from the trace.
  }

  // Pass 3: topological order by end time (a producer's push precedes the
  // matching pop, so it precedes the consuming unit's close).
  std::vector<std::size_t> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return units[a].end_t < units[b].end_t;
                   });
  std::vector<sim::TaskDag::NodeId> node_of(units.size(), 0);
  std::vector<bool> placed(units.size(), false);
  for (std::size_t ui : order) {
    const Unit& u = units[ui];
    std::vector<sim::TaskDag::NodeId> deps;
    auto add_dep = [&](std::int64_t dep_unit) {
      if (dep_unit < 0) return;
      const auto d = static_cast<std::size_t>(dep_unit);
      // Coarse-clock ties can invert the order; drop rather than abort.
      if (placed[d]) deps.push_back(node_of[d]);
    };
    add_dep(u.track_prev);
    for (const auto& [chan, seq] : u.pop_refs) {
      const auto it = producer_unit.find(chan);
      if (it != producer_unit.end() && seq < it->second.size()) {
        add_dep(it->second[seq]);
      }
    }
    node_of[ui] = out.dag.add_task(u.cost_s, deps);
    placed[ui] = true;
    if (u.is_sink) {
      ++out.sink_units;
    } else if (u.pop_refs.empty()) {
      ++out.source_units;
    } else {
      ++out.stage_units;
    }
  }
  return out;
}

}  // namespace parc::flow
