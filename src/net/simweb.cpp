#include "net/simweb.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <thread>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace parc::net {

std::vector<Page> make_page_set(std::size_t n, const NetParams& params,
                                std::uint64_t seed) {
  PARC_CHECK(n >= 1);
  PARC_CHECK(params.num_hosts >= 1);
  Rng rng(seed);
  std::vector<Page> pages;
  pages.reserve(n);
  const double mu = std::log(params.mean_page_bytes) - 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    pages.push_back(Page{
        rng.exponential(params.mean_latency_s),
        std::max(1.0, rng.lognormal(mu, 1.0)),
        static_cast<std::uint32_t>(rng.zipf(params.num_hosts, 1.1)),
    });
  }
  return pages;
}

FetchSimResult simulate_fetch(const std::vector<Page>& pages,
                              std::size_t connections,
                              const NetParams& params) {
  PARC_CHECK(connections >= 1);
  PARC_CHECK(!pages.empty());

  struct Conn {
    bool busy = false;
    bool transferring = false;
    double phase_end = 0.0;   ///< latency phase end (when !transferring)
    double remaining = 0.0;   ///< bytes left (when transferring)
    std::size_t page = 0;
  };
  std::vector<Conn> conns(connections);
  std::deque<std::size_t> queue;
  std::uint32_t max_host = 0;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    queue.push_back(i);
    max_host = std::max(max_host, pages[i].host);
  }
  std::vector<std::size_t> host_active(max_host + 1, 0);

  std::vector<double> completion(pages.size(), 0.0);
  double t = 0.0;
  std::size_t done = 0;
  double bytes_moved = 0.0;

  // Take the first queued page whose host has spare capacity (FIFO among
  // eligible pages); returns false when nothing is currently startable.
  auto start_next = [&](Conn& c) -> bool {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      const std::size_t p = *it;
      const std::uint32_t host = pages[p].host;
      if (params.per_host_cap != 0 &&
          host_active[host] >= params.per_host_cap) {
        continue;
      }
      queue.erase(it);
      ++host_active[host];
      c.busy = true;
      c.transferring = false;
      c.page = p;
      c.phase_end = t + pages[p].latency_s + params.per_connection_overhead_s;
      return true;
    }
    c.busy = false;
    return false;
  };

  for (auto& c : conns) {
    if (!start_next(c)) break;  // later conns can't start either (same state)
  }

  while (done < pages.size()) {
    // Count active transfers to get the processor-sharing rate.
    std::size_t transfers = 0;
    for (const auto& c : conns) {
      if (c.busy && c.transferring) ++transfers;
    }
    const double rate =
        transfers > 0 ? params.bandwidth_bps / static_cast<double>(transfers)
                      : 0.0;

    // Earliest next event across latency expiries and transfer completions.
    double t_next = std::numeric_limits<double>::infinity();
    for (const auto& c : conns) {
      if (!c.busy) continue;
      if (c.transferring) {
        t_next = std::min(t_next, t + c.remaining / rate);
      } else {
        t_next = std::min(t_next, c.phase_end);
      }
    }
    PARC_CHECK_MSG(std::isfinite(t_next), "fetch simulation stalled");

    // Advance transfers to t_next.
    const double dt = t_next - t;
    for (auto& c : conns) {
      if (c.busy && c.transferring) {
        c.remaining -= rate * dt;
        bytes_moved += rate * dt;
      }
    }
    t = t_next;

    // Fire everything due at t (epsilon for float drift).
    constexpr double kEps = 1e-12;
    bool any_completion = false;
    for (auto& c : conns) {
      if (!c.busy) continue;
      if (c.transferring && c.remaining <= kEps * params.bandwidth_bps + 1e-9) {
        completion[c.page] = t;
        ++done;
        --host_active[pages[c.page].host];
        c.busy = false;
        any_completion = true;
      } else if (!c.transferring && c.phase_end <= t + kEps) {
        c.transferring = true;
        c.remaining = pages[c.page].size_bytes;
      }
    }
    if (any_completion) {
      // A freed host slot may unblock pages skipped earlier; retry every
      // idle connection until no further start succeeds.
      for (auto& c : conns) {
        if (!c.busy && !queue.empty()) {
          if (!start_next(c)) break;
        }
      }
    }
  }

  Summary s;
  s.add_all(completion);
  FetchSimResult out;
  out.makespan_s = s.max();
  out.mean_page_s = s.mean();
  out.p95_page_s = s.percentile(95.0);
  out.throughput_pages_s =
      static_cast<double>(pages.size()) / std::max(out.makespan_s, 1e-12);
  out.bandwidth_utilisation =
      bytes_moved / (params.bandwidth_bps * std::max(out.makespan_s, 1e-12));
  return out;
}

SimWebServer::SimWebServer(std::vector<Page> pages, const NetParams& params,
                           double time_scale)
    : pages_(std::move(pages)), params_(params), time_scale_(time_scale) {
  PARC_CHECK(time_scale_ > 0.0);
}

std::uint32_t SimWebServer::host_of(std::size_t index) const {
  PARC_CHECK(index < pages_.size());
  return pages_[index].host;
}

double SimWebServer::fetch(std::size_t index) {
  PARC_CHECK(index < pages_.size());
  const Page& p = pages_[index];
  const double transfer_s = p.size_bytes / params_.bandwidth_bps;
  const double total_s =
      (p.latency_s + params_.per_connection_overhead_s + transfer_s) *
      time_scale_;
  std::this_thread::sleep_for(std::chrono::duration<double>(total_s));
  return p.size_bytes;
}

}  // namespace parc::net
