// The student program of project 10: download N pages as fast as possible
// with ParallelTask, bounded to a configurable number of simultaneous
// connections. A bounded flow::Channel of page indices feeds `connections`
// interactive (IO) consumer tasks — the channel's capacity is the
// backpressure bound the original Java version got from a counting
// semaphore, with the work list streamed instead of materialised.
//
// ConnectionPool generalises the flat semaphore into a real keep-alive
// pool: connections are host-bound, released connections go idle and are
// reused by later fetches of the same host (the HTTP keep-alive economics —
// reuse skips the per-connection setup overhead), per-host and global caps
// bound simultaneous connections, and acquire() carries a timeout so a
// saturated pool sheds instead of queueing forever. parc::serve's web-fetch
// backend runs every request through one of these.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/simweb.hpp"
#include "ptask/runtime.hpp"

namespace parc::net {

struct DownloadRun {
  double wall_ms = 0.0;
  double bytes = 0.0;
  std::size_t pages = 0;
};

/// Fetch every page of `server` using interactive tasks, at most
/// `connections` in flight. Blocks until all pages have arrived.
[[nodiscard]] DownloadRun download_all(SimWebServer& server,
                                       std::size_t connections,
                                       ptask::Runtime& rt);

/// Sequential baseline: one connection, one fetch at a time.
[[nodiscard]] DownloadRun download_sequential(SimWebServer& server);

// ---------------------------------------------------------------------------
// Keep-alive connection pool.
// ---------------------------------------------------------------------------

struct PoolOptions {
  std::size_t max_connections = 16;  ///< simultaneous open, all hosts
  std::size_t per_host_cap = 6;      ///< simultaneous per host (≥ 1)
  /// Default acquire() wait budget before giving up (shed, don't queue).
  double acquire_timeout_s = 1.0;
};

class ConnectionPool {
 public:
  explicit ConnectionPool(PoolOptions opts);

  /// A checked-out connection. `conn_id` is the stable identity of the
  /// underlying connection (stable across reuses — equal ids mean the same
  /// kept-alive connection served both fetches); `reused` is false exactly
  /// when this acquire opened it.
  struct Lease {
    std::uint32_t host = 0;
    std::uint64_t conn_id = 0;
    bool reused = false;
    bool valid = false;  ///< false: acquire timed out, nothing to release
  };

  /// Check out a connection to `host`: reuse an idle one, else open a new
  /// one within the caps, else wait until one frees up or `timeout_s`
  /// elapses (invalid lease + timeout counted). May close an idle
  /// connection of another host to stay under max_connections.
  [[nodiscard]] Lease acquire(std::uint32_t host);
  [[nodiscard]] Lease acquire_for(std::uint32_t host, double timeout_s);

  /// Return the connection to the host's idle list (keep-alive). The lease
  /// is invalidated. No-op for invalid leases.
  void release(Lease& lease);

  /// Counters and gauges; a consistent snapshot (taken under the pool
  /// mutex). At quiescence: created == closed + open, open == idle (nothing
  /// in use), and every fetch was either `created` or `reused`.
  struct Stats {
    std::uint64_t created = 0;   ///< connections opened
    std::uint64_t reused = 0;    ///< acquires served by an idle connection
    std::uint64_t closed = 0;    ///< idle connections closed for cap room
    std::uint64_t timeouts = 0;  ///< acquires that gave up waiting
    std::size_t open = 0;        ///< connections currently open
    std::size_t idle = 0;        ///< open and parked on an idle list
    std::size_t in_use = 0;      ///< open and checked out
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct HostState {
    std::vector<std::uint64_t> idle;  ///< conn ids, LIFO (hottest first)
    std::size_t active = 0;           ///< open connections to this host
  };

  PoolOptions opts_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint32_t, HostState> hosts_;  // guarded by mutex_
  std::size_t open_ = 0;                                // guarded by mutex_
  std::size_t in_use_ = 0;                              // guarded by mutex_
  std::uint64_t next_conn_id_ = 1;                      // guarded by mutex_
  Stats stats_;                                         // guarded by mutex_
};

/// One fetch through the pool: acquire a connection to the page's host
/// (timeout → ok == false, bytes == 0), fetch, release for reuse.
struct PooledFetch {
  bool ok = false;
  bool timed_out = false;
  double bytes = 0.0;
  std::uint64_t conn_id = 0;
  bool reused_connection = false;
};
[[nodiscard]] PooledFetch fetch_pooled(SimWebServer& server,
                                       ConnectionPool& pool,
                                       std::size_t index);

}  // namespace parc::net
