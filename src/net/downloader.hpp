// The student program of project 10: download N pages as fast as possible
// with ParallelTask, bounded to a configurable number of simultaneous
// connections. Interactive (IO) tasks + a counting semaphore — exactly the
// structure Parallel Task's IO_TASK gives in Java.
#pragma once

#include <cstddef>

#include "net/simweb.hpp"
#include "ptask/runtime.hpp"

namespace parc::net {

struct DownloadRun {
  double wall_ms = 0.0;
  double bytes = 0.0;
  std::size_t pages = 0;
};

/// Fetch every page of `server` using interactive tasks, at most
/// `connections` in flight. Blocks until all pages have arrived.
[[nodiscard]] DownloadRun download_all(SimWebServer& server,
                                       std::size_t connections,
                                       ptask::Runtime& rt);

/// Sequential baseline: one connection, one fetch at a time.
[[nodiscard]] DownloadRun download_sequential(SimWebServer& server);

}  // namespace parc::net
