// Project 10 substrate: "fast web access through concurrent connections".
//
// Two faithful stand-ins for the real web the students hit:
//
//  1. A *virtual-clock* discrete-event model (simulate_fetch): each page has
//     a latency (connection setup + server think time) and a size; active
//     transfers share the client's downlink bandwidth (processor sharing).
//     Deterministic, instant, and it reproduces the economics exactly —
//     throughput rises while fetches are latency-bound, then knees when the
//     downlink saturates; past that, extra connections only add overhead.
//
//  2. A *real-time* SimWebServer whose fetch() sleeps the scaled latency and
//     transfer time, for driving the actual ParallelTask interactive-task
//     code path in examples and tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace parc::net {

struct Page {
  double latency_s;   ///< time before the first byte
  double size_bytes;
  std::uint32_t host = 0;  ///< origin server (per-host caps apply)
};

struct NetParams {
  double mean_latency_s = 0.08;       ///< ~80 ms RTT+think
  double mean_page_bytes = 256e3;     ///< 256 kB mean page
  double bandwidth_bps = 12.5e6;      ///< 100 Mbit/s downlink (bytes/s)
  /// Per-connection protocol overhead added to each fetch's latency —
  /// models handshake cost that makes "thousands of connections" lose.
  double per_connection_overhead_s = 0.004;
  /// Distinct origin hosts pages are spread over (Zipf-popular).
  std::uint32_t num_hosts = 1;
  /// Max simultaneous connections to one host (0 = unlimited). Browsers
  /// classically use 6; polite crawlers 1-2. With a hot host, this cap —
  /// not the client's connection budget — limits throughput.
  std::size_t per_host_cap = 0;
};

/// Deterministic page set: exponential latencies, log-normal sizes, hosts
/// assigned Zipf(1.1) over params.num_hosts.
[[nodiscard]] std::vector<Page> make_page_set(std::size_t n,
                                              const NetParams& params,
                                              std::uint64_t seed);

struct FetchSimResult {
  double makespan_s = 0.0;         ///< start → last page complete
  double mean_page_s = 0.0;        ///< mean per-page completion latency
  double p95_page_s = 0.0;
  double throughput_pages_s = 0.0; ///< pages / makespan
  double bandwidth_utilisation = 0.0;  ///< bytes moved / (B * makespan)
};

/// Fetch all pages with at most `connections` concurrent transfers on a
/// shared downlink (processor sharing); exact event-driven evaluation on a
/// virtual clock. Deterministic for a given page set.
[[nodiscard]] FetchSimResult simulate_fetch(const std::vector<Page>& pages,
                                            std::size_t connections,
                                            const NetParams& params);

/// Real-time simulated web server: fetch() blocks for the page's scaled
/// latency + transfer time. time_scale 0.01 turns an 80 ms page into 0.8 ms
/// so tests stay fast while the concurrency structure is identical.
class SimWebServer {
 public:
  SimWebServer(std::vector<Page> pages, const NetParams& params,
               double time_scale = 0.01);

  /// Blocking fetch of page `index`; returns its (unscaled) modelled bytes.
  double fetch(std::size_t index);

  [[nodiscard]] std::size_t page_count() const noexcept {
    return pages_.size();
  }

  /// Origin host of page `index` (what a keep-alive pool keys leases on).
  [[nodiscard]] std::uint32_t host_of(std::size_t index) const;

 private:
  std::vector<Page> pages_;
  NetParams params_;
  double time_scale_;
};

}  // namespace parc::net
