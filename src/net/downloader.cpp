#include "net/downloader.hpp"

#include <atomic>
#include <memory>
#include <semaphore>

#include "ptask/ptask.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"

namespace parc::net {

DownloadRun download_all(SimWebServer& server, std::size_t connections,
                         ptask::Runtime& rt) {
  PARC_CHECK(connections >= 1);
  const std::size_t n = server.page_count();
  DownloadRun run;
  run.pages = n;
  std::atomic<double> bytes{0.0};
  // The connection budget: acquired before each fetch, released after —
  // the "how many connections should be opened at the same time?" knob.
  auto gate = std::make_unique<std::counting_semaphore<>>(
      static_cast<std::ptrdiff_t>(connections));

  Stopwatch sw;
  std::vector<ptask::TaskID<void>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(ptask::run_interactive(rt, [&, i] {
      gate->acquire();
      const double b = server.fetch(i);
      gate->release();
      double cur = bytes.load(std::memory_order_relaxed);
      while (!bytes.compare_exchange_weak(cur, cur + b,
                                          std::memory_order_relaxed)) {
      }
    }));
  }
  for (auto& t : tasks) t.get();
  run.wall_ms = sw.elapsed_ms();
  run.bytes = bytes.load();
  return run;
}

DownloadRun download_sequential(SimWebServer& server) {
  DownloadRun run;
  run.pages = server.page_count();
  Stopwatch sw;
  for (std::size_t i = 0; i < server.page_count(); ++i) {
    run.bytes += server.fetch(i);
  }
  run.wall_ms = sw.elapsed_ms();
  return run;
}

}  // namespace parc::net
