#include "net/downloader.hpp"

#include <algorithm>

#include "flow/channel.hpp"
#include "ptask/ptask.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"

namespace parc::net {

DownloadRun download_all(SimWebServer& server, std::size_t connections,
                         ptask::Runtime& rt) {
  PARC_CHECK(connections >= 1);
  const std::size_t n = server.page_count();
  DownloadRun run;
  run.pages = n;

  // The connection budget IS the consumer count: `connections` interactive
  // tasks pull page indices from one bounded channel, so at most that many
  // fetches are in flight and the feed exerts backpressure on the producer
  // instead of materialising one task per page up front.
  flow::Channel<std::size_t> feed(flow::ChannelOptions{
      .capacity = std::max<std::size_t>(2 * connections, 8),
      .stripes = std::min<std::size_t>(4, connections)});

  Stopwatch sw;
  std::vector<double> fetched(connections, 0.0);
  std::vector<ptask::TaskID<void>> consumers;
  consumers.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    consumers.push_back(ptask::run_interactive(rt, [&, c] {
      // Per-consumer byte sums: no shared accumulator on the hot path.
      std::size_t i = 0;
      while (feed.pop(i)) fetched[c] += server.fetch(i);
    }));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const bool pushed = feed.push(i);
    PARC_CHECK(pushed);  // nobody closes the feed but us
  }
  feed.close();
  for (auto& t : consumers) t.get();
  run.wall_ms = sw.elapsed_ms();
  for (const double b : fetched) run.bytes += b;
  return run;
}

DownloadRun download_sequential(SimWebServer& server) {
  DownloadRun run;
  run.pages = server.page_count();
  Stopwatch sw;
  for (std::size_t i = 0; i < server.page_count(); ++i) {
    run.bytes += server.fetch(i);
  }
  run.wall_ms = sw.elapsed_ms();
  return run;
}

// ---------------------------------------------------------------------------
// ConnectionPool
// ---------------------------------------------------------------------------

ConnectionPool::ConnectionPool(PoolOptions opts) : opts_(opts) {
  PARC_CHECK(opts_.max_connections >= 1);
  PARC_CHECK(opts_.per_host_cap >= 1);
  PARC_CHECK(opts_.acquire_timeout_s >= 0.0);
}

ConnectionPool::Lease ConnectionPool::acquire(std::uint32_t host) {
  return acquire_for(host, opts_.acquire_timeout_s);
}

ConnectionPool::Lease ConnectionPool::acquire_for(std::uint32_t host,
                                                 double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  std::unique_lock lock(mutex_);
  for (;;) {
    HostState& hs = hosts_[host];
    // 1. Keep-alive reuse: hottest idle connection to this host.
    if (!hs.idle.empty()) {
      Lease lease{host, hs.idle.back(), /*reused=*/true, /*valid=*/true};
      hs.idle.pop_back();
      ++in_use_;
      ++stats_.reused;
      return lease;
    }
    // 2. Open a new connection if the host cap allows it. The global cap
    // may first require closing another host's idle connection (real
    // pools reassign sockets the same way; counted as `closed`).
    if (hs.active < opts_.per_host_cap) {
      bool room = open_ < opts_.max_connections;
      if (!room) {
        for (auto& [other, state] : hosts_) {
          if (!state.idle.empty()) {
            state.idle.pop_back();
            --state.active;
            --open_;
            ++stats_.closed;
            room = true;
            break;
          }
        }
      }
      if (room) {
        Lease lease{host, next_conn_id_++, /*reused=*/false, /*valid=*/true};
        ++hs.active;
        ++open_;
        ++in_use_;
        ++stats_.created;
        return lease;
      }
    }
    // 3. Saturated: wait for a release (or a close making room).
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      ++stats_.timeouts;
      return Lease{};
    }
  }
}

void ConnectionPool::release(Lease& lease) {
  if (!lease.valid) return;
  {
    std::scoped_lock lock(mutex_);
    hosts_[lease.host].idle.push_back(lease.conn_id);
    --in_use_;
  }
  lease.valid = false;
  cv_.notify_all();
}

ConnectionPool::Stats ConnectionPool::stats() const {
  std::scoped_lock lock(mutex_);
  Stats out = stats_;
  out.open = open_;
  out.in_use = in_use_;
  out.idle = open_ - in_use_;
  return out;
}

PooledFetch fetch_pooled(SimWebServer& server, ConnectionPool& pool,
                         std::size_t index) {
  PooledFetch out;
  ConnectionPool::Lease lease = pool.acquire(server.host_of(index));
  if (!lease.valid) {
    out.timed_out = true;
    return out;
  }
  out.conn_id = lease.conn_id;
  out.reused_connection = lease.reused;
  out.bytes = server.fetch(index);
  out.ok = true;
  pool.release(lease);
  return out;
}

}  // namespace parc::net
