// §IV-A: "subversion logs were assessed to gauge individual member
// contributions". Synthetic commit histories per group over the 8-week
// project window, plus the contribution analysis the instructors ran.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parc::course {

struct Commit {
  std::string author;
  int day = 0;           ///< 0-based day within the 8-week window (0..55)
  std::size_t lines_changed = 0;
  std::string path;      ///< file touched (project-convention layout)
};

struct CommitLog {
  std::size_t group_id = 0;
  std::vector<Commit> commits;  ///< sorted by day
};

struct CommitModel {
  int project_days = 56;         ///< 8 weeks
  double commits_per_day = 1.2;  ///< group-wide mean
  /// Member activity weights (relative); equal by default, skewed to model
  /// an uneven group.
  std::vector<double> member_weights;
  /// Probability a commit lands in src/ vs tests/ vs benchmarks/ — the
  /// directory hygiene the PARC protocol documentation prescribes.
  double src_fraction = 0.6;
  double test_fraction = 0.3;  // remainder goes to benchmarks/
  /// Deadline effect: commit intensity multiplier on the last 7 days.
  double crunch_multiplier = 2.5;
};

/// Generate a deterministic commit history for a group.
[[nodiscard]] CommitLog generate_commit_log(std::size_t group_id,
                                            const std::vector<std::string>& members,
                                            const CommitModel& model,
                                            std::uint64_t seed);

struct MemberContribution {
  std::string member;
  std::size_t commits = 0;
  std::size_t lines = 0;
  double commit_share = 0.0;  ///< fraction of the group's commits
  double line_share = 0.0;
};

struct ContributionReport {
  std::vector<MemberContribution> members;  ///< sorted by commit share desc
  /// True when no member's line share exceeds the imbalance threshold —
  /// the "in most cases, students were awarded equal marks" condition.
  bool balanced = true;
  /// Largest member line share.
  double max_line_share = 0.0;
  /// Fraction of commits respecting the src/tests/benchmarks layout.
  double layout_compliance = 0.0;
};

/// Analyse a log; `imbalance_threshold` is the max acceptable line share.
[[nodiscard]] ContributionReport analyse_contributions(
    const CommitLog& log, double imbalance_threshold = 0.6);

}  // namespace parc::course
