#include "course/plan.hpp"

namespace parc::course {

std::string week_use_code(unsigned uses) {
  std::string out;
  auto add = [&](unsigned bit, const char* code) {
    if (uses & bit) {
      if (!out.empty()) out += "+";
      out += code;
    }
  };
  add(static_cast<unsigned>(WeekUse::kInstructorTeaching), "IT");
  add(static_cast<unsigned>(WeekUse::kAssessment), "A");
  add(static_cast<unsigned>(WeekUse::kProject), "P");
  add(static_cast<unsigned>(WeekUse::kStudentTeaching), "ST");
  return out.empty() ? "-" : out;
}

std::vector<Week> softeng751_plan() {
  using U = WeekUse;
  const auto IT = static_cast<unsigned>(U::kInstructorTeaching);
  const auto A = static_cast<unsigned>(U::kAssessment);
  const auto P = static_cast<unsigned>(U::kProject);
  const auto ST = static_cast<unsigned>(U::kStudentTeaching);

  std::vector<Week> plan;
  // Weeks 1–5: shared-memory parallel programming essentials.
  for (int w = 1; w <= 5; ++w) {
    plan.push_back(Week{w, false, IT,
                        "core shared-memory parallel programming (lectures + "
                        "in-class exercises)"});
  }
  // Week 6: Test 1 + project-topic discussion; groups finalised.
  plan.push_back(Week{6, false, A | P,
                      "Test 1 (25%); project topics discussed; doodle-poll "
                      "allocation"});
  // Two-week study break.
  plan.push_back(Week{0, true, P, "study break (project start)"});
  plan.push_back(Week{0, true, P, "study break"});
  // Weeks 7–10: student seminars (two 20+5 min presentations per slot).
  for (int w = 7; w <= 10; ++w) {
    plan.push_back(Week{w, false, ST | P,
                        "group seminars (assessed, 20%); project work"});
  }
  // Week 11: Test 2 over all presentation content.
  plan.push_back(Week{11, false, A | P, "Test 2 (10%) on all seminar topics"});
  // Week 12: project wrap-up; implementation (25%) + report (20%) due.
  plan.push_back(Week{12, false, P,
                      "final week: implementation and report due on the "
                      "group's subversion repository"});
  return plan;
}

PlanChecks validate_plan(const std::vector<Week>& plan) {
  PlanChecks checks;
  const auto IT = static_cast<unsigned>(WeekUse::kInstructorTeaching);
  const auto A = static_cast<unsigned>(WeekUse::kAssessment);
  const auto P = static_cast<unsigned>(WeekUse::kProject);
  const auto ST = static_cast<unsigned>(WeekUse::kStudentTeaching);

  checks.first_five_weeks_teaching = true;
  bool seminars_ok = true;
  for (const auto& w : plan) {
    if (w.study_break) {
      if (w.uses & P) ++checks.project_weeks;
      continue;
    }
    if (w.number >= 1 && w.number <= 5) {
      if (!(w.uses & IT)) checks.first_five_weeks_teaching = false;
    }
    if (w.number == 6) checks.test1_in_week6 = (w.uses & A) != 0;
    if (w.number >= 7 && w.number <= 10) {
      if (!(w.uses & ST)) seminars_ok = false;
    }
    if (w.number == 11) checks.test2_in_week11 = (w.uses & A) != 0;
    if (w.number == 12) checks.final_due_week12 = (w.uses & P) != 0;
    if (w.uses & P) ++checks.project_weeks;
  }
  checks.seminars_weeks_7_to_10 = seminars_ok;
  return checks;
}

}  // namespace parc::course
