#include "course/assessment.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace parc::course {

std::string to_string(Component c) {
  switch (c) {
    case Component::kTest1: return "Test 1";
    case Component::kSeminar: return "Group seminar";
    case Component::kTest2: return "Test 2";
    case Component::kImplementation: return "Project implementation";
    case Component::kReport: return "Project report";
  }
  return "?";
}

double final_grade(const StudentRecord& student) {
  double total = 0.0;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    double raw = student.raw[c];
    PARC_CHECK_MSG(raw >= 0.0 && raw <= 100.0, "raw mark out of range");
    if (is_group_component(static_cast<Component>(c))) {
      raw = std::clamp(raw * student.peer_factor, 0.0, 100.0);
    }
    total += raw * kWeights[c] / 100.0;
  }
  return std::clamp(total, 0.0, 100.0);
}

CohortGradeStats cohort_stats(const std::vector<StudentRecord>& cohort) {
  PARC_CHECK(cohort.size() >= 2);
  Summary grades;
  std::vector<double> test1;
  std::vector<double> impl;
  for (const auto& s : cohort) {
    grades.add(final_grade(s));
    test1.push_back(s.raw[static_cast<std::size_t>(Component::kTest1)]);
    impl.push_back(
        s.raw[static_cast<std::size_t>(Component::kImplementation)]);
  }
  CohortGradeStats stats;
  stats.mean = grades.mean();
  stats.stddev = grades.stddev();
  stats.min = grades.min();
  stats.max = grades.max();
  stats.test1_impl_correlation = pearson_correlation(test1, impl);
  return stats;
}

}  // namespace parc::course
