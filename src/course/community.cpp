#include "course/community.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parc::course {

std::vector<SemesterOutcome> simulate_community(
    const CommunityParams& params, std::size_t semesters,
    std::size_t postgraduate_mentors, std::uint64_t seed) {
  PARC_CHECK(semesters >= 1);
  Rng rng(seed);
  std::vector<SemesterOutcome> out;
  out.reserve(semesters);

  // Active project-students by remaining semesters of involvement.
  std::vector<std::size_t> active(params.active_semesters, 0);
  std::size_t open_bugs = 0;

  for (std::size_t s = 0; s < semesters; ++s) {
    SemesterOutcome sem;
    sem.semester = s + 1;
    sem.course_students = params.cohort_per_semester;

    // Experienced members = everyone active from earlier semesters.
    std::size_t experienced = 0;
    for (std::size_t a : active) experienced += a;
    sem.experienced_members = experienced;
    sem.mentors_available = experienced + postgraduate_mentors;

    // Masters-taught students deciding to continue with PARC, plus
    // word-of-mouth recruits driven by the experienced community.
    const auto masters = static_cast<std::size_t>(
        static_cast<double>(params.cohort_per_semester) *
        params.masters_fraction);
    std::size_t continuing = 0;
    for (std::size_t i = 0; i < masters; ++i) {
      if (rng.chance(params.continue_probability)) ++continuing;
    }
    const auto recommended = static_cast<std::size_t>(
        rng.exponential(std::max(
            params.recommendation_rate * static_cast<double>(experienced),
            1e-9)));
    sem.new_project_students = continuing + recommended;
    sem.mentoring_ratio =
        sem.mentors_available == 0
            ? static_cast<double>(sem.new_project_students)
            : static_cast<double>(sem.new_project_students) /
                  static_cast<double>(sem.mentors_available);

    // Tool feedback loop: every active user (course projects use the tools
    // too) may file bug reports; a fraction get fixed this semester.
    const std::size_t users =
        params.cohort_per_semester + experienced + sem.new_project_students;
    std::size_t reports = 0;
    for (std::size_t u = 0; u < users; ++u) {
      if (rng.chance(std::min(params.bug_reports_per_user, 1.0))) ++reports;
    }
    sem.bug_reports = reports;
    open_bugs += reports;
    const auto fixed = static_cast<std::size_t>(
        static_cast<double>(open_bugs) * params.fix_rate);
    sem.bugs_fixed = fixed;
    open_bugs -= std::min(fixed, open_bugs);
    sem.open_bugs = open_bugs;

    // Age the active population and admit this semester's intake.
    for (std::size_t a = params.active_semesters - 1; a > 0; --a) {
      active[a] = active[a - 1];
    }
    active[0] = sem.new_project_students;

    out.push_back(sem);
  }
  return out;
}

}  // namespace parc::course
