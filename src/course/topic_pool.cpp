#include "course/topic_pool.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace parc::course {

double suitability(const TopicProposal& topic) {
  PARC_CHECK(topic.timeframe_fit >= 0.0 && topic.timeframe_fit <= 1.0);
  PARC_CHECK(topic.divisibility >= 0.0 && topic.divisibility <= 1.0);
  PARC_CHECK(topic.nugget_value >= 0.0 && topic.nugget_value <= 1.0);
  const double geo = std::cbrt(topic.timeframe_fit * topic.divisibility *
                               topic.nugget_value);
  return geo * std::pow(0.9, topic.times_offered);
}

void TopicPool::propose(TopicProposal topic) {
  PARC_CHECK(!topic.title.empty());
  topics_.push_back(std::move(topic));
}

std::vector<TopicProposal> TopicPool::review_top(std::size_t count,
                                                 int year) {
  PARC_CHECK_MSG(topics_.size() >= count,
                 "not enough proposals for the yearly review");
  // Stable sort on descending suitability: proposal order breaks ties, so
  // the review is deterministic.
  std::vector<std::size_t> order(topics_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return suitability(topics_[a]) > suitability(topics_[b]);
                   });
  std::vector<TopicProposal> selected;
  selected.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    TopicProposal& t = topics_[order[k]];
    ++t.times_offered;
    t.proposed_year = year;
    selected.push_back(t);
  }
  return selected;
}

TopicPool softeng751_2013_pool() {
  TopicPool pool;
  using K = ProposerKind;
  // Factor estimates justified by the paper's own per-topic remarks.
  pool.propose({"Thumbnails of images in a folder", K::kInstructor, 0.9, 0.8,
                0.8, 2013, 0});
  pool.propose({"Parallel quicksort", K::kInstructor, 1.0, 0.9, 0.6, 2013, 0});
  pool.propose({"Parallelisation of simple computational kernels",
                K::kPostgraduate, 0.9, 0.9, 0.7, 2013, 0});
  pool.propose({"Search for a string in text files of a folder",
                K::kInstructor, 0.9, 0.8, 0.7, 2013, 0});
  pool.propose({"Reductions in Pyjama", K::kPostgraduate, 0.8, 0.7, 1.0, 2013,
                0});
  pool.propose({"Task-aware libraries for Parallel Task", K::kPostgraduate,
                0.7, 0.7, 1.0, 2013, 0});
  pool.propose({"PDF searching", K::kInstructor, 0.8, 0.8, 0.7, 2013, 0});
  pool.propose({"Understanding and coping with the Java memory model",
                K::kInstructor, 0.8, 0.6, 0.9, 2013, 0});
  pool.propose({"Parallel use of collections", K::kInstructor, 0.9, 0.8, 0.8,
                2013, 0});
  pool.propose({"Fast web access through concurrent connections",
                K::kPostgraduate, 0.8, 0.7, 0.8, 2013, 0});
  // Wish-list entries that did not make the 2013 top ten — close behind, so
  // the re-offering discount rotates them in within a couple of years.
  pool.propose({"Parallel image filters gallery", K::kRecycled, 0.7, 0.7, 0.6,
                2012, 0});
  pool.propose({"GUI-aware matrix visualiser", K::kPostgraduate, 0.7, 0.6,
                0.7, 2013, 0});
  return pool;
}

}  // namespace parc::course
