// §III-D / §IV-C: the instructors' topic wish-list. Topics are proposed
// during the year (by instructors and postgraduate students), scored on the
// paper's three suitability factors — timeframe fit (one quarter of a
// full-time load, 8 development weeks), equal divisibility across a group
// of 3 (needed for assessment), and "independent nugget" value
// (complementary to the lab without requiring a dive into its big
// codebases) — and reviewed once a year to select the top ten. Unselected
// and completed topics can be recycled into later years "due to their
// research nature".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parc::course {

enum class ProposerKind { kInstructor, kPostgraduate, kRecycled };

struct TopicProposal {
  std::string title;
  ProposerKind proposer = ProposerKind::kInstructor;
  /// §III-D suitability factors, each 0..1.
  double timeframe_fit = 0.5;   ///< doable in 8 weeks at quarter load
  double divisibility = 0.5;    ///< splits evenly across 3 students
  double nugget_value = 0.5;    ///< independent but complementary to PARC
  int proposed_year = 0;
  int times_offered = 0;
};

/// Combined §III-D suitability score. All three factors gate (a topic that
/// cannot fit the timeframe is unsuitable no matter how divisible), so the
/// score is the geometric mean, discounted 10% per previous offering to
/// favour freshness among equals.
[[nodiscard]] double suitability(const TopicProposal& topic);

class TopicPool {
 public:
  void propose(TopicProposal topic);

  [[nodiscard]] std::size_t size() const noexcept { return topics_.size(); }
  [[nodiscard]] const std::vector<TopicProposal>& topics() const noexcept {
    return topics_;
  }

  /// The yearly review: pick the `count` most suitable topics, mark them
  /// offered in `year`, and return them (best first). Selected topics stay
  /// in the pool for future recycling. Aborts if fewer than `count` topics
  /// exist.
  [[nodiscard]] std::vector<TopicProposal> review_top(std::size_t count,
                                                      int year);

 private:
  std::vector<TopicProposal> topics_;
};

/// The 2013 pool: the ten §IV-C topics with factor estimates derived from
/// the paper's own remarks (e.g. quicksort is trivially divisible; the
/// memory-model study is an educational nugget; Android options demand
/// existing familiarity, lowering timeframe fit slightly).
[[nodiscard]] TopicPool softeng751_2013_pool();

}  // namespace parc::course
