// §V-B "Outcomes": the PARC community dynamics the paper reports
// qualitatively — SoftEng 751 graduates continuing into Masters-taught
// projects with the lab, experienced project students mentoring new ones,
// and the enlarged user base feeding bug reports and fixes back into the
// research tools. This module turns those claims into a seeded multi-
// semester simulation whose series the outcomes bench prints.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace parc::course {

struct CommunityParams {
  std::size_t cohort_per_semester = 57;   ///< SoftEng 751 enrolment
  /// Fraction of the cohort who are Masters-taught students.
  double masters_fraction = 0.35;
  /// §V-B: "many of those completing SoftEng 751 decide to complete such a
  /// project with PARC the following semester".
  double continue_probability = 0.5;
  /// Semesters a continuing student stays active in the lab.
  std::size_t active_semesters = 2;
  /// Bug reports filed per active tool user per semester (mean).
  double bug_reports_per_user = 0.8;
  /// Fraction of reported bugs resolved within the semester.
  double fix_rate = 0.75;
  /// Word-of-mouth: extra recruits per experienced member per semester.
  double recommendation_rate = 0.15;
};

struct SemesterOutcome {
  std::size_t semester = 0;
  std::size_t course_students = 0;    ///< taking SoftEng 751 now
  std::size_t new_project_students = 0;  ///< continued into a PARC project
  std::size_t experienced_members = 0;   ///< past project students mentoring
  std::size_t mentors_available = 0;     ///< experienced + postgraduates
  double mentoring_ratio = 0.0;          ///< new project students per mentor
  std::size_t bug_reports = 0;           ///< filed against the tools
  std::size_t bugs_fixed = 0;
  std::size_t open_bugs = 0;             ///< backlog carried forward
};

/// Run `semesters` of community evolution, deterministic in `seed`.
/// Postgraduate researchers (a fixed pool) always mentor; experienced
/// project students add to the mentor pool — the "constant stream of
/// mentoring" §V-B describes emerges when new_project_students per mentor
/// stays bounded as the community grows.
[[nodiscard]] std::vector<SemesterOutcome> simulate_community(
    const CommunityParams& params, std::size_t semesters,
    std::size_t postgraduate_mentors, std::uint64_t seed);

}  // namespace parc::course
