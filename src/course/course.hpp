// Umbrella header for the course-administration machinery (parc::course):
// everything §III–§V of the paper describes, as testable components.
#pragma once

#include "course/allocation.hpp"  // IWYU pragma: export
#include "course/assessment.hpp"  // IWYU pragma: export
#include "course/commits.hpp"     // IWYU pragma: export
#include "course/community.hpp"   // IWYU pragma: export
#include "course/evaluation.hpp"  // IWYU pragma: export
#include "course/nexus.hpp"       // IWYU pragma: export
#include "course/plan.hpp"        // IWYU pragma: export
#include "course/topic_pool.hpp"  // IWYU pragma: export
