// §V-A: the summative Likert course evaluation. A generative response model
// (per-question probabilities over the 5-point scale) calibrated so the
// expected agree-or-strongly-agree fractions match the paper's reported
// 95% / 95% / 92%; a seeded cohort sample regenerates the evaluation table.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parc::course {

enum class Likert : std::size_t {
  kStronglyAgree = 0,
  kAgree = 1,
  kNeutral = 2,
  kDisagree = 3,
  kStronglyDisagree = 4,
};
inline constexpr std::size_t kLikertLevels = 5;

[[nodiscard]] std::string to_string(Likert l);

struct SurveyQuestion {
  std::string text;
  /// Response distribution (sums to 1).
  std::array<double, kLikertLevels> probabilities;
  /// The paper's reported agree+strongly-agree percentage, for comparison.
  double reported_agree_pct;
};

/// The three §V-A questions with distributions whose agree mass equals the
/// reported numbers.
[[nodiscard]] std::vector<SurveyQuestion> softeng751_survey();

struct QuestionOutcome {
  std::string question;
  std::array<std::uint64_t, kLikertLevels> counts{};
  double agree_pct = 0.0;     ///< sampled agree+strongly-agree %
  double reported_pct = 0.0;  ///< the paper's number
};

/// Sample `respondents` seeded responses per question.
[[nodiscard]] std::vector<QuestionOutcome> run_survey(
    const std::vector<SurveyQuestion>& questions, std::size_t respondents,
    std::uint64_t seed);

/// The open-comment themes §V-A quotes (used by the evaluation bench to
/// print the qualitative half of the table).
struct OpenComment {
  std::string prompt;
  std::string comment;
};
[[nodiscard]] std::vector<OpenComment> reported_open_comments();

}  // namespace parc::course
