// Figure 2: the SoftEng 751 course structure — 12 teaching weeks around a
// study break, each week tagged with how it is used: instructor-led teaching
// (IT), assessment (A), project "free time" (P), or student-led teaching
// (ST). The plan generator encodes §III-A/C's rules; validators assert the
// placements the paper calls out.
#pragma once

#include <string>
#include <vector>

namespace parc::course {

enum class WeekUse : unsigned {
  kInstructorTeaching = 1u << 0,  ///< IT
  kAssessment = 1u << 1,          ///< A
  kProject = 1u << 2,             ///< P
  kStudentTeaching = 1u << 3,     ///< ST
};

[[nodiscard]] std::string week_use_code(unsigned uses);

struct Week {
  int number = 0;           ///< 1..12 teaching weeks (break excluded)
  bool study_break = false; ///< the 2-week gap after week 6
  unsigned uses = 0;        ///< bitmask of WeekUse
  std::string note;
};

/// The full semester timeline: teaching weeks 1..6, the study break, then
/// teaching weeks 7..12, with uses per §III-A and assessment per §III-C.
[[nodiscard]] std::vector<Week> softeng751_plan();

/// Structural checks the paper states explicitly.
struct PlanChecks {
  bool test1_in_week6 = false;          ///< test concluding weeks 1–5 content
  bool seminars_weeks_7_to_10 = false;  ///< group presentations window
  bool test2_in_week11 = false;         ///< concluding the presentations
  bool final_due_week12 = false;        ///< implementation + report due
  bool first_five_weeks_teaching = false;
  int project_weeks = 0;                ///< weeks with project time (≈ 8)
};
[[nodiscard]] PlanChecks validate_plan(const std::vector<Week>& plan);

}  // namespace parc::course
