#include "course/allocation.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parc::course {

std::vector<Topic> softeng751_topics() {
  return {
      {"Thumbnails of images in a folder", true},
      {"Parallel quicksort", false},
      {"Parallelisation of simple computational kernels", false},
      {"Search for a string in text files of a folder", true},
      {"Reductions in Pyjama", false},
      {"Task-aware libraries for Parallel Task", false},
      {"PDF searching", true},
      {"Understanding and coping with the Java memory model", false},
      {"Parallel use of collections", false},
      {"Fast web access through concurrent connections", true},
  };
}

std::vector<Group> form_groups(const std::vector<std::string>& student_ids,
                               std::size_t group_size) {
  PARC_CHECK(group_size >= 1);
  std::vector<Group> groups;
  for (std::size_t i = 0; i < student_ids.size(); i += group_size) {
    Group g;
    g.id = groups.size();
    for (std::size_t j = i; j < std::min(i + group_size, student_ids.size());
         ++j) {
      g.members.push_back(student_ids[j]);
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

void assign_preferences(std::vector<Group>& groups, std::size_t num_topics,
                        std::uint64_t seed) {
  Rng rng(seed);
  for (auto& g : groups) {
    // Zipf-weighted sampling without replacement: popular topics tend to
    // appear early in many groups' preference lists.
    std::vector<std::size_t> remaining(num_topics);
    for (std::size_t i = 0; i < num_topics; ++i) remaining[i] = i;
    g.preferences.clear();
    while (!remaining.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.zipf(remaining.size(), 0.8));
      g.preferences.push_back(remaining[pick]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
}

AllocationResult allocate_fifo(const std::vector<Group>& groups,
                               std::size_t num_topics,
                               std::size_t capacity_per_topic,
                               const std::vector<std::size_t>& arrival_order) {
  PARC_CHECK(arrival_order.size() == groups.size());
  PARC_CHECK_MSG(num_topics * capacity_per_topic >= groups.size(),
                 "not enough topic capacity for all groups");
  AllocationResult result;
  result.topic_of_group.assign(groups.size(), num_topics);
  result.groups_of_topic.assign(num_topics, {});
  result.rank_received.assign(groups.size(), 0);

  for (std::size_t gi : arrival_order) {
    const Group& g = groups[gi];
    PARC_CHECK_MSG(g.preferences.size() == num_topics,
                   "group preference list must rank every topic");
    for (std::size_t rank = 0; rank < g.preferences.size(); ++rank) {
      const std::size_t topic = g.preferences[rank];
      if (result.groups_of_topic[topic].size() < capacity_per_topic) {
        result.groups_of_topic[topic].push_back(gi);
        result.topic_of_group[gi] = topic;
        result.rank_received[gi] = rank + 1;
        break;
      }
    }
    PARC_CHECK_MSG(result.topic_of_group[gi] < num_topics,
                   "group could not be allocated (capacity exhausted)");
  }
  return result;
}

bool allocation_respects_capacity(const AllocationResult& result,
                                  std::size_t capacity_per_topic) {
  return std::all_of(result.groups_of_topic.begin(),
                     result.groups_of_topic.end(), [&](const auto& gs) {
                       return gs.size() <= capacity_per_topic;
                     });
}

bool allocation_is_fifo_fair(const std::vector<Group>& groups,
                             const AllocationResult& result,
                             const std::vector<std::size_t>& arrival_order) {
  // FIFO fairness: when group g picked, every topic it ranked strictly
  // better than its allocation was already full *of earlier arrivals*.
  std::vector<std::size_t> arrival_pos(groups.size());
  for (std::size_t pos = 0; pos < arrival_order.size(); ++pos) {
    arrival_pos[arrival_order[pos]] = pos;
  }
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const std::size_t got_rank = result.rank_received[gi];  // 1-based
    for (std::size_t r = 0; r + 1 < got_rank; ++r) {
      const std::size_t better = groups[gi].preferences[r];
      // Everyone holding `better` must have arrived before gi.
      for (std::size_t holder : result.groups_of_topic[better]) {
        if (arrival_pos[holder] > arrival_pos[gi]) return false;
      }
    }
  }
  return true;
}

}  // namespace parc::course
