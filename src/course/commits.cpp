#include "course/commits.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.hpp"

namespace parc::course {

CommitLog generate_commit_log(std::size_t group_id,
                              const std::vector<std::string>& members,
                              const CommitModel& model, std::uint64_t seed) {
  PARC_CHECK(!members.empty());
  std::vector<double> weights = model.member_weights;
  if (weights.empty()) weights.assign(members.size(), 1.0);
  PARC_CHECK(weights.size() == members.size());
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  PARC_CHECK(weight_sum > 0.0);

  Rng rng(seed);
  CommitLog log;
  log.group_id = group_id;

  static constexpr const char* kSrcFiles[] = {
      "src/main.java", "src/Worker.java", "src/Scheduler.java",
      "src/Gui.java"};
  static constexpr const char* kTestFiles[] = {"tests/WorkerTest.java",
                                               "tests/SchedulerTest.java"};
  static constexpr const char* kBenchFiles[] = {"benchmarks/Throughput.java",
                                                "benchmarks/Scaling.java"};

  for (int day = 0; day < model.project_days; ++day) {
    double intensity = model.commits_per_day;
    if (day >= model.project_days - 7) intensity *= model.crunch_multiplier;
    // Poisson-ish count via exponential draw.
    const auto count = static_cast<std::size_t>(rng.exponential(intensity));
    for (std::size_t c = 0; c < count; ++c) {
      // Pick the author by weight.
      double u = rng.uniform() * weight_sum;
      std::size_t author = 0;
      for (std::size_t m = 0; m < weights.size(); ++m) {
        u -= weights[m];
        if (u <= 0.0) {
          author = m;
          break;
        }
      }
      const double kind = rng.uniform();
      const char* path;
      if (kind < model.src_fraction) {
        path = kSrcFiles[rng.below(std::size(kSrcFiles))];
      } else if (kind < model.src_fraction + model.test_fraction) {
        path = kTestFiles[rng.below(std::size(kTestFiles))];
      } else {
        path = kBenchFiles[rng.below(std::size(kBenchFiles))];
      }
      log.commits.push_back(Commit{
          members[author], day,
          static_cast<std::size_t>(5.0 + rng.lognormal(3.0, 1.0)), path});
    }
  }
  std::stable_sort(log.commits.begin(), log.commits.end(),
                   [](const Commit& a, const Commit& b) {
                     return a.day < b.day;
                   });
  return log;
}

ContributionReport analyse_contributions(const CommitLog& log,
                                         double imbalance_threshold) {
  ContributionReport report;
  std::map<std::string, MemberContribution> by_member;
  std::size_t total_commits = 0;
  std::size_t total_lines = 0;
  std::size_t layout_ok = 0;
  for (const auto& c : log.commits) {
    auto& m = by_member[c.author];
    m.member = c.author;
    ++m.commits;
    m.lines += c.lines_changed;
    ++total_commits;
    total_lines += c.lines_changed;
    if (c.path.starts_with("src/") || c.path.starts_with("tests/") ||
        c.path.starts_with("benchmarks/")) {
      ++layout_ok;
    }
  }
  for (auto& [name, m] : by_member) {
    if (total_commits > 0) {
      m.commit_share = static_cast<double>(m.commits) /
                       static_cast<double>(total_commits);
    }
    if (total_lines > 0) {
      m.line_share =
          static_cast<double>(m.lines) / static_cast<double>(total_lines);
    }
    report.max_line_share = std::max(report.max_line_share, m.line_share);
    report.members.push_back(m);
  }
  std::sort(report.members.begin(), report.members.end(),
            [](const MemberContribution& a, const MemberContribution& b) {
              return a.commit_share > b.commit_share;
            });
  report.balanced = report.max_line_share <= imbalance_threshold;
  report.layout_compliance =
      total_commits == 0 ? 1.0
                         : static_cast<double>(layout_ok) /
                               static_cast<double>(total_commits);
  return report;
}

}  // namespace parc::course
