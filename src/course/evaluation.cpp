#include "course/evaluation.hpp"

#include <cmath>

#include "support/check.hpp"

namespace parc::course {

std::string to_string(Likert l) {
  switch (l) {
    case Likert::kStronglyAgree: return "Strongly Agree";
    case Likert::kAgree: return "Agree";
    case Likert::kNeutral: return "Neutral";
    case Likert::kDisagree: return "Disagree";
    case Likert::kStronglyDisagree: return "Strongly Disagree";
  }
  return "?";
}

std::vector<SurveyQuestion> softeng751_survey() {
  // Distributions: agree mass equals the reported percentage; the split
  // between SA and A and the tail shape are modelling choices (documented
  // in EXPERIMENTS.md), chosen to be typical of strongly positive
  // evaluations.
  return {
      {"The objectives of the lectures were clearly explained",
       {0.45, 0.50, 0.04, 0.01, 0.00},
       95.0},
      {"The lecturer stimulated my engagement in the learning process",
       {0.50, 0.45, 0.04, 0.01, 0.00},
       95.0},
      {"The class discussions were effective in helping me learn",
       {0.42, 0.50, 0.06, 0.015, 0.005},
       92.0},
  };
}

std::vector<QuestionOutcome> run_survey(
    const std::vector<SurveyQuestion>& questions, std::size_t respondents,
    std::uint64_t seed) {
  PARC_CHECK(respondents >= 1);
  Rng rng(seed);
  std::vector<QuestionOutcome> outcomes;
  outcomes.reserve(questions.size());
  for (const auto& q : questions) {
    double total = 0.0;
    for (double p : q.probabilities) total += p;
    PARC_CHECK_MSG(std::abs(total - 1.0) < 1e-9,
                   "question probabilities must sum to 1");
    QuestionOutcome outcome;
    outcome.question = q.text;
    outcome.reported_pct = q.reported_agree_pct;
    for (std::size_t r = 0; r < respondents; ++r) {
      const double u = rng.uniform();
      double acc = 0.0;
      std::size_t level = kLikertLevels - 1;
      for (std::size_t l = 0; l < kLikertLevels; ++l) {
        acc += q.probabilities[l];
        if (u < acc) {
          level = l;
          break;
        }
      }
      ++outcome.counts[level];
    }
    const auto agree =
        outcome.counts[static_cast<std::size_t>(Likert::kStronglyAgree)] +
        outcome.counts[static_cast<std::size_t>(Likert::kAgree)];
    outcome.agree_pct = 100.0 * static_cast<double>(agree) /
                        static_cast<double>(respondents);
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<OpenComment> reported_open_comments() {
  return {
      {"What was most helpful for your learning?",
       "The presentations were good practice and watching them was "
       "informative"},
      {"What was most helpful for your learning?",
       "Keep up the interaction with all of the groups"},
      {"What was most helpful for your learning?",
       "The project that was part of the course was very helpful"},
      {"What was most helpful for your learning?",
       "This course was full of project work. It helped me to learn and "
       "explore the concepts in Java. It also helped me to develop my "
       "presentation skills."},
      {"What improvement would you like to see?",
       "Individual meeting time can be extended so that more research "
       "oriented discussion can be done. I personally feel this course is "
       "very good to perform research hence more time should be devoted by "
       "the lecturer during individual meeting."},
  };
}

}  // namespace parc::course
