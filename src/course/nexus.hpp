// Figure 1: the research-teaching nexus (Healey 2005, as extended in the
// paper) — two axes (content emphasis × student participation) spanning four
// categories — plus the classification of every SoftEng 751 activity, which
// regenerates the figure and the paper's §III-E analysis (three quadrants
// covered; research-oriented deliberately absent).
#pragma once

#include <string>
#include <vector>

namespace parc::course {

/// Horizontal axis: is the emphasis on research *content* or on research
/// *processes and problems*?
enum class ContentEmphasis { kResearchContent, kResearchProcesses };

/// Vertical axis: are students an *audience* or *participants*?
enum class StudentRole { kAudience, kParticipants };

enum class NexusCategory {
  kResearchLed,       ///< content × audience — taught the instructor's research
  kResearchOriented,  ///< processes × audience — taught research ethos/method
  kResearchTutored,   ///< content × participants — writing/discussing papers
  kResearchBased,     ///< processes × participants — inquiry-based projects
};

[[nodiscard]] std::string to_string(ContentEmphasis e);
[[nodiscard]] std::string to_string(StudentRole r);
[[nodiscard]] std::string to_string(NexusCategory c);

/// The quadrant mapping of Healey's model.
[[nodiscard]] NexusCategory classify(ContentEmphasis emphasis,
                                     StudentRole role);

/// One course activity placed on the nexus.
struct CourseActivity {
  std::string name;
  ContentEmphasis emphasis;
  StudentRole role;

  [[nodiscard]] NexusCategory category() const {
    return classify(emphasis, role);
  }
};

/// The SoftEng 751 activity inventory as described in §§III–IV.
[[nodiscard]] std::vector<CourseActivity> softeng751_activities();

/// Which categories a set of activities covers (deduplicated, model order).
[[nodiscard]] std::vector<NexusCategory> covered_categories(
    const std::vector<CourseActivity>& activities);

}  // namespace parc::course
