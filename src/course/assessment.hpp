// §III-C: the assessment schema (Test 1 25%, group seminar 20%, Test 2 10%,
// project implementation 25%, group report 20%) and the grade pipeline —
// group marks shared by members, adjusted by peer evaluation, individual
// test marks added, all folded into a final grade.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace parc::course {

enum class Component : std::size_t {
  kTest1 = 0,
  kSeminar = 1,
  kTest2 = 2,
  kImplementation = 3,
  kReport = 4,
};
inline constexpr std::size_t kComponentCount = 5;

[[nodiscard]] std::string to_string(Component c);

/// Weights in percent, exactly §III-C. Sum is 100 (static_asserted).
inline constexpr std::array<double, kComponentCount> kWeights = {25.0, 20.0,
                                                                 10.0, 25.0,
                                                                 20.0};
static_assert(kWeights[0] + kWeights[1] + kWeights[2] + kWeights[3] +
                  kWeights[4] ==
              100.0);

/// Which components are assessed per-group (members share the raw mark).
[[nodiscard]] constexpr bool is_group_component(Component c) noexcept {
  return c == Component::kSeminar || c == Component::kImplementation ||
         c == Component::kReport;
}

struct StudentRecord {
  std::string id;
  std::size_t group = 0;
  /// Raw marks 0..100 per component (group components hold the group mark).
  std::array<double, kComponentCount> raw{};
  /// Peer-evaluation factor ~1.0; scales group components (§III-C: "in most
  /// cases, students within a team were awarded equal marks").
  double peer_factor = 1.0;
};

/// Final grade 0..100 after weighting and peer adjustment (clamped).
[[nodiscard]] double final_grade(const StudentRecord& student);

struct CohortGradeStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Pearson correlation between Test 1 and project implementation marks —
  /// a sanity signal that the individual test tracks project competence.
  double test1_impl_correlation = 0.0;
};
[[nodiscard]] CohortGradeStats cohort_stats(
    const std::vector<StudentRecord>& cohort);

}  // namespace parc::course
