// §III-D: group formation and the first-in-first-served doodle-poll topic
// allocation — 10 topics, at most 2 groups per topic, one pick per group,
// groups choose their best still-open preference in arrival order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parc::course {

struct Topic {
  std::string title;
  bool android_option = false;  ///< "(also available for Android)"
};

/// The ten 2013 project topics of §IV-C, in paper order.
[[nodiscard]] std::vector<Topic> softeng751_topics();

struct Group {
  std::size_t id = 0;
  std::vector<std::string> members;
  /// Preference order over topic indices (best first).
  std::vector<std::size_t> preferences;
};

/// Partition `student_ids` into groups of `group_size` (last group may be
/// smaller), preserving input order — the "all students allocated to a
/// group before the poll opens" precondition.
[[nodiscard]] std::vector<Group> form_groups(
    const std::vector<std::string>& student_ids, std::size_t group_size);

/// Seeded preference orders: popularity-skewed so "some project topics had
/// higher preference than others" (a Zipf-weighted ranking per group).
void assign_preferences(std::vector<Group>& groups, std::size_t num_topics,
                        std::uint64_t seed);

struct AllocationResult {
  /// topic index per group (index = group id).
  std::vector<std::size_t> topic_of_group;
  /// groups per topic (inner size ≤ capacity).
  std::vector<std::vector<std::size_t>> groups_of_topic;
  /// 1-based preference rank each group received (1 = first choice).
  std::vector<std::size_t> rank_received;
};

/// First-in-first-served allocation: groups pick in `arrival_order`; each
/// takes its most-preferred topic that still has capacity. Aborts if total
/// capacity < number of groups.
[[nodiscard]] AllocationResult allocate_fifo(
    const std::vector<Group>& groups, std::size_t num_topics,
    std::size_t capacity_per_topic, const std::vector<std::size_t>& arrival_order);

/// Invariant checks for property tests.
[[nodiscard]] bool allocation_respects_capacity(
    const AllocationResult& result, std::size_t capacity_per_topic);
[[nodiscard]] bool allocation_is_fifo_fair(
    const std::vector<Group>& groups, const AllocationResult& result,
    const std::vector<std::size_t>& arrival_order);

}  // namespace parc::course
