#include "course/nexus.hpp"

#include <algorithm>

namespace parc::course {

std::string to_string(ContentEmphasis e) {
  return e == ContentEmphasis::kResearchContent ? "research content"
                                                : "research processes";
}

std::string to_string(StudentRole r) {
  return r == StudentRole::kAudience ? "audience" : "participants";
}

std::string to_string(NexusCategory c) {
  switch (c) {
    case NexusCategory::kResearchLed: return "research-led";
    case NexusCategory::kResearchOriented: return "research-oriented";
    case NexusCategory::kResearchTutored: return "research-tutored";
    case NexusCategory::kResearchBased: return "research-based";
  }
  return "?";
}

NexusCategory classify(ContentEmphasis emphasis, StudentRole role) {
  if (role == StudentRole::kAudience) {
    return emphasis == ContentEmphasis::kResearchContent
               ? NexusCategory::kResearchLed
               : NexusCategory::kResearchOriented;
  }
  return emphasis == ContentEmphasis::kResearchContent
             ? NexusCategory::kResearchTutored
             : NexusCategory::kResearchBased;
}

std::vector<CourseActivity> softeng751_activities() {
  using E = ContentEmphasis;
  using R = StudentRole;
  // §III-E: lectures referencing PARC research are research-led; in-class
  // programming exercises keep students active but still on taught content;
  // the group project is inquiry-based (research-based); seminars, class
  // discussions and the report are research-tutored (students leading
  // discussion of research content). No activity sits in research-oriented
  // — the paper argues that is acceptable for this course.
  return {
      {"lectures on core parallel concepts", E::kResearchContent, R::kAudience},
      {"lectures on latest PARC tools", E::kResearchContent, R::kAudience},
      {"in-class programming exercises", E::kResearchContent, R::kParticipants},
      {"group research project", E::kResearchProcesses, R::kParticipants},
      {"group seminar presentations", E::kResearchContent, R::kParticipants},
      {"cross-group class discussions", E::kResearchContent, R::kParticipants},
      {"project report", E::kResearchContent, R::kParticipants},
      {"postgraduate mentoring sessions", E::kResearchProcesses,
       R::kParticipants},
  };
}

std::vector<NexusCategory> covered_categories(
    const std::vector<CourseActivity>& activities) {
  std::vector<NexusCategory> out;
  for (const auto& a : activities) {
    const auto c = a.category();
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

}  // namespace parc::course
