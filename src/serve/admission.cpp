#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace parc::serve {

AdmissionController::AdmissionController(AdmissionConfig cfg)
    : cfg_(cfg), tokens_(cfg.burst) {
  PARC_CHECK(cfg_.rate >= 0.0);
  PARC_CHECK(cfg_.burst >= 1.0);
  PARC_CHECK(cfg_.reserve_normal >= 0.0);
  PARC_CHECK(cfg_.reserve_low >= cfg_.reserve_normal);
  PARC_CHECK(cfg_.reserve_low < 1.0);
  PARC_CHECK(cfg_.pending_low > 0.0);
  PARC_CHECK(cfg_.pending_normal >= cfg_.pending_low);
  PARC_CHECK(cfg_.pending_normal <= 1.0);
  reserves_ = {0.0, cfg_.reserve_normal * cfg_.burst,
               cfg_.reserve_low * cfg_.burst};
  if (cfg_.max_pending == 0) {
    pending_caps_ = {0, 0, 0};
  } else {
    const auto cap = [&](double frac) {
      return std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::floor(frac * static_cast<double>(cfg_.max_pending))));
    };
    pending_caps_ = {cfg_.max_pending, cap(cfg_.pending_normal),
                     cap(cfg_.pending_low)};
  }
}

AdmissionController::Decision AdmissionController::admit(
    double arrival_s, Priority priority, double deadline_s,
    std::size_t in_flight) {
  const auto p = static_cast<std::size_t>(priority);
  ++stats_.offered;
  ++stats_.offered_by[p];
  const auto shed = [&](std::uint64_t& counter, Decision d) {
    ++counter;
    ++stats_.shed_by[p];
    return d;
  };
  if (deadline_s > 0.0 && arrival_s > deadline_s) {
    return shed(stats_.shed_deadline, Decision::shed_deadline);
  }
  if (cfg_.rate > 0.0) {
    tokens_ = std::min(cfg_.burst,
                       tokens_ + (arrival_s - last_refill_s_) * cfg_.rate);
    last_refill_s_ = arrival_s;
    if (tokens_ < 1.0 + reserves_[p]) {
      return shed(stats_.shed_rate, Decision::shed_rate);
    }
  }
  if (pending_caps_[p] != 0 && in_flight >= pending_caps_[p]) {
    return shed(stats_.shed_queue, Decision::shed_queue);
  }
  if (cfg_.rate > 0.0) tokens_ -= 1.0;
  ++stats_.admitted;
  ++stats_.admitted_by[p];
  return Decision::admit;
}

}  // namespace parc::serve
