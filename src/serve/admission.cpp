#include "serve/admission.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parc::serve {

AdmissionController::AdmissionController(AdmissionConfig cfg)
    : cfg_(cfg), tokens_(cfg.burst) {
  PARC_CHECK(cfg_.rate >= 0.0);
  PARC_CHECK(cfg_.burst >= 1.0);
}

AdmissionController::Decision AdmissionController::admit(
    double arrival_s, std::size_t in_flight) {
  ++stats_.offered;
  if (cfg_.rate > 0.0) {
    tokens_ = std::min(cfg_.burst,
                       tokens_ + (arrival_s - last_refill_s_) * cfg_.rate);
    last_refill_s_ = arrival_s;
    if (tokens_ < 1.0) {
      ++stats_.shed_rate;
      return Decision::shed_rate;
    }
  }
  if (cfg_.max_pending != 0 && in_flight >= cfg_.max_pending) {
    ++stats_.shed_queue;
    return Decision::shed_queue;
  }
  if (cfg_.rate > 0.0) tokens_ -= 1.0;
  ++stats_.admitted;
  return Decision::admit;
}

}  // namespace parc::serve
