#include "serve/replay.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace parc::serve {

ReplayDag build_serve_dag(const obs::TraceDump& dump) {
  // Pass 1: gather arrivals (id, t) and exec spans (id → begin/end).
  struct Span {
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    bool has_begin = false;
    bool has_end = false;
  };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> arrivals;  // (t, id)
  std::unordered_map<std::uint64_t, Span> spans;
  std::unordered_map<std::uint64_t, std::size_t> picks;  // request → replica
  std::unordered_map<std::uint64_t, std::size_t> fails;  // request → replica
  for (const auto& track : dump.tracks) {
    for (const obs::Event& e : track.events) {
      switch (e.kind) {
        case obs::EventKind::kServeArrive:
          arrivals.emplace_back(e.t_ns, e.id);
          break;
        case obs::EventKind::kServeExecBegin: {
          Span& s = spans[e.id];
          s.begin_ns = e.t_ns;
          s.has_begin = true;
          break;
        }
        case obs::EventKind::kServeExecEnd: {
          Span& s = spans[e.id];
          s.end_ns = e.t_ns;
          s.has_end = true;
          break;
        }
        case obs::EventKind::kReplicaPick:
          picks[e.id] = static_cast<std::size_t>(e.arg);
          break;
        case obs::EventKind::kReplicaFail:
          fails[e.id] = static_cast<std::size_t>(e.arg);
          break;
        default:
          break;
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  ReplayDag out;
  out.arrivals = arrivals.size();
  const std::uint64_t first_t = arrivals.empty() ? 0 : arrivals.front().first;
  std::uint64_t prev_t = 0;
  sim::TaskDag::NodeId prev_chain = 0;
  bool have_prev = false;
  for (const auto& [t_ns, id] : arrivals) {
    const double gap_s = static_cast<double>(t_ns - prev_t) * 1e-9;
    prev_t = t_ns;
    const sim::TaskDag::NodeId chain =
        have_prev ? out.dag.add_task(gap_s, {prev_chain})
                  : out.dag.add_task(gap_s);
    out.ingress_span_s += gap_s;
    prev_chain = chain;
    have_prev = true;
    const auto it = spans.find(id);
    if (it != spans.end() && it->second.has_begin && it->second.has_end &&
        it->second.end_ns >= it->second.begin_ns) {
      const double cost_s =
          static_cast<double>(it->second.end_ns - it->second.begin_ns) * 1e-9;
      const sim::TaskDag::NodeId exec = out.dag.add_task(cost_s, {chain});
      ReplayDag::RequestRef ref{chain, exec,
                                static_cast<double>(t_ns - first_t) * 1e-9};
      if (const auto pick = picks.find(id); pick != picks.end()) {
        ref.replica = pick->second;
      }
      ref.failed = fails.contains(id);
      if (ref.replica != ReplayDag::kNoReplica) {
        if (ref.replica >= out.replicas.size()) {
          out.replicas.resize(ref.replica + 1);
        }
        out.replicas[ref.replica].exec_work_s += cost_s;
      }
      out.requests.push_back(ref);
      ++out.executed;
      out.exec_work_s += cost_s;
    }
  }
  // Attribute every routing event — including requests whose exec span was
  // dropped — so per-replica routed/failed totals match the router's own
  // counters even on lossy traces.
  for (const auto& [id, replica] : picks) {
    if (replica >= out.replicas.size()) out.replicas.resize(replica + 1);
    ++out.replicas[replica].routed;
  }
  for (const auto& [id, replica] : fails) {
    if (replica >= out.replicas.size()) out.replicas.resize(replica + 1);
    ++out.replicas[replica].failed;
  }
  return out;
}

std::vector<double> replay_latencies(const ReplayDag& replay,
                                     const sim::MachineParams& machine) {
  std::vector<double> latencies;
  if (replay.requests.empty()) return latencies;
  sim::MachineParams params = machine;
  params.record_task_finish = true;
  const sim::SimOutcome out = sim::simulate(replay.dag, params);
  latencies.reserve(replay.requests.size());
  for (const ReplayDag::RequestRef& r : replay.requests) {
    // The ingress chain replays the offered-load clock, so a request's
    // simulated arrival is its trace offset; anything the machine adds on
    // top of that offset is queueing + service latency.
    latencies.push_back(
        std::max(0.0, out.task_finish_s[r.exec] - r.arrival_s));
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

}  // namespace parc::serve
