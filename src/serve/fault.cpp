#include "serve/fault.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace parc::serve {

namespace {

/// splitmix64 finaliser over (seed, window index, request id): the one
/// deterministic coin every error-window draw uses.
std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ull) ^
                    (c * 0xc2b2ae3d27d4eb4full);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultWindow> windows, std::uint64_t seed)
    : windows_(std::move(windows)), seed_(seed) {
  for (const FaultWindow& w : windows_) {
    PARC_CHECK(w.end_s >= w.begin_s);
    PARC_CHECK(w.error_prob >= 0.0 && w.error_prob <= 1.0);
    PARC_CHECK(w.slow_factor >= 1);
  }
}

FaultDecision FaultPlan::decide(std::size_t replica, double sched_s,
                                std::uint64_t request_id) const noexcept {
  FaultDecision out;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const FaultWindow& w = windows_[i];
    if (w.replica != replica || sched_s < w.begin_s || sched_s >= w.end_s) {
      continue;
    }
    switch (w.kind) {
      case FaultKind::blackout:
        out.fail = true;
        break;
      case FaultKind::error: {
        const double coin =
            static_cast<double>(mix3(seed_, i + 1, request_id) >> 11) *
            0x1.0p-53;
        if (coin < w.error_prob) out.fail = true;
        break;
      }
      case FaultKind::slowdown:
        out.slow_factor = std::max(out.slow_factor, w.slow_factor);
        break;
    }
  }
  return out;
}

FaultPlan FaultPlan::blackout(std::size_t replica, double begin_s,
                              double end_s) {
  return FaultPlan({FaultWindow{replica, begin_s, end_s,
                                FaultKind::blackout, 1.0, 1}});
}

}  // namespace parc::serve
