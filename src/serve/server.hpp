// parc::serve::Server — the serving pipeline on top of the sharded
// work-stealing pool:
//
//   offer() ── admission ── cache ── coalesce ── batch ── submit_bulk ──▶
//              (token       (striped  (merge      (per-    (shard-affine,
//               bucket +     LRU)      dup in-     shard)    one wakeup
//               queue                  flight                per batch)
//               bound)                 keys)
//
//   worker: execute backend ── cache.put ── complete leader + waiters
//
// Request keys hash to a locality shard; a key's cache stripe, coalescer
// stripe and pool shard are all derived from the same composite key, so
// repeated work for one key stays on one domain (warm caches, local
// steals) and two hot keys on different shards never contend.
//
// Threading contract: offer()/flush()/drain() are called by ONE ingress
// thread (the admission controller and batcher are single-writer by
// design); execution and completion run concurrently on pool workers. All
// cross-thread counters are atomics — exact after drain(), like the pool's
// own Stats contract.
//
// Latency is measured from Request::arrival_s on the server's clock
// (start() zeroes it): for open-loop runs that is the *scheduled* arrival,
// so queueing delay under overload is charged to the server, not silently
// dropped (no coordinated omission).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "conc/striped_map.hpp"
#include "flow/channel.hpp"
#include "sched/thread_pool.hpp"
#include "serve/admission.hpp"
#include "serve/backend.hpp"
#include "serve/request.hpp"
#include "support/clock.hpp"
#include "support/histogram.hpp"

namespace parc::serve {

struct ServerConfig {
  sched::WorkStealingPool::Config pool{};
  AdmissionConfig admission{};
  BackendConfig backend{};
  std::size_t cache_capacity = 1ull << 15;
  std::size_t cache_stripes = 16;
  /// Requests accumulated per shard before the batch is sealed and
  /// submitted (one pool wakeup per batch). flush() seals partial batches.
  std::size_t batch_max = 32;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// How offer() disposed of the request.
  enum class Outcome : std::uint8_t {
    shed,        ///< refused by admission (rate or queue bound)
    hit,         ///< answered inline from the result cache
    coalesced,   ///< attached to an in-flight computation of the same key
    dispatched,  ///< became the leader of a new computation (batched)
  };

  /// Zero the latency clock. Call once, immediately before the first
  /// offer(); Request::arrival_s values are interpreted on this clock.
  void start() { clock_ = Stopwatch(); }

  /// Current time on the latency clock (closed-loop drivers stamp
  /// arrival_s with this at issue).
  [[nodiscard]] double now_s() const { return clock_.elapsed_s(); }

  /// Ingress: decide, answer or enqueue one request. Single-threaded.
  Outcome offer(const Request& req);

  /// Seal and submit every shard's partial batch. Required before any wait
  /// that expects in_flight() to reach zero — batched-but-unsubmitted
  /// requests count as in flight but are invisible to the pool.
  void flush();

  /// flush(), then cooperatively run pool work until every admitted
  /// request has completed. Exact-counter quiescent point.
  void drain();

  /// Admitted requests not yet completed (includes batched-not-yet-
  /// submitted ones; see flush()).
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Counter snapshot. Conservation invariants, exact after drain():
  ///   offered   == admitted + shed_rate + shed_queue
  ///   admitted  == hits_inline + coalesced + executed + in_flight
  ///   completed == admitted - in_flight
  ///   cache misses at the ingress == executed + coalesced (+ leader
  ///   re-executions after an eviction races an attach, counted once as
  ///   executed)
  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t hits_inline = 0;  ///< answered at the ingress
    std::uint64_t coalesced = 0;    ///< merged into an in-flight key
    std::uint64_t executed = 0;     ///< backend executions (batch leaders)
    std::uint64_t batches = 0;      ///< submit_bulk calls
    std::uint64_t completed = 0;    ///< replies delivered
    std::size_t in_flight = 0;
    typename conc::StripedLruCache<std::uint64_t, std::uint64_t>::Stats cache;
    std::uint64_t net_timeouts = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Merged completion-latency histogram (seconds), all request kinds.
  [[nodiscard]] LogHistogram latency_histogram() const;

  [[nodiscard]] sched::WorkStealingPool& pool() noexcept { return *pool_; }
  [[nodiscard]] Backend& backend() noexcept { return backend_; }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  /// The pool shard the composite key routes to (exposed for tests).
  [[nodiscard]] std::size_t shard_of(std::uint64_t ckey) const noexcept;

  /// Per-shard ingress channel counters (pushed/popped/high-water). The
  /// ingress batcher is a flow::Channel per shard, so batch occupancy is
  /// observable the same way as any pipeline stage.
  [[nodiscard]] std::vector<flow::ChannelStats> ingress_stats() const;

 private:
  struct ExecItem {
    std::uint64_t ckey = 0;
    RequestKind kind = RequestKind::img;
    std::uint64_t key = 0;
    std::uint64_t leader_id = 0;
    double arrival_s = 0.0;
    std::size_t shard = 0;
  };
  struct Waiter {
    std::uint64_t id = 0;
    double arrival_s = 0.0;
  };
  struct InFlightNode {
    std::uint64_t leader_id = 0;
    std::vector<Waiter> waiters;
  };
  struct alignas(64) CoalesceStripe {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, InFlightNode> nodes;
  };
  static constexpr std::size_t kLatSlots = 16;
  struct alignas(64) LatencySlot {
    mutable std::mutex mutex;
    LogHistogram hist{1e-7, 1e2};  ///< seconds: 0.1 µs .. 100 s
  };

  void seal_batch(std::size_t shard);
  void execute_item(const ExecItem& item);
  void complete_one(std::uint64_t id, double arrival_s);

  CoalesceStripe& coalesce_stripe(std::uint64_t ckey) noexcept {
    return *coalesce_[ckey * 0x9e3779b97f4a7c15ull >> 32 &
                      (coalesce_.size() - 1)];
  }

  ServerConfig cfg_;
  std::unique_ptr<sched::WorkStealingPool> pool_;
  Backend backend_;
  AdmissionController admission_;
  conc::StripedLruCache<std::uint64_t, std::uint64_t> cache_;
  std::vector<std::unique_ptr<CoalesceStripe>> coalesce_;
  // Ingress→batch hand-off: one bounded SPSC channel per pool shard (the
  // single ingress thread is both producer and consumer — the channel is
  // the batch accumulator, so occupancy/high-water are first-class stats
  // and every enqueue shows up as a kChanPush in traces). seal_batch()
  // drains a shard's channel into seal_scratch_ and submits one bulk job.
  std::vector<std::unique_ptr<flow::Channel<ExecItem>>> ingress_;
  std::vector<ExecItem> seal_scratch_;  ///< ingress thread only
  std::array<LatencySlot, kLatSlots> latency_;
  Stopwatch clock_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> hits_inline_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::uint64_t batches_sealed_ = 0;  ///< ingress thread only

  // Process-wide obs counters (resolved once; hot-path add is one relaxed
  // fetch_add on a stable atomic).
  std::atomic<std::uint64_t>& ctr_admitted_;
  std::atomic<std::uint64_t>& ctr_shed_;
  std::atomic<std::uint64_t>& ctr_completed_;
};

}  // namespace parc::serve
