// parc::serve::Server — the serving pipeline on top of the sharded
// work-stealing pool:
//
//   offer() ── admission ── cache ── coalesce ── route ── batch ──▶ pool
//              (deadline +  (striped  (merge      (P2C     (per-shard,
//               priority     LRU,      dup in-     over     one wakeup
//               token        TTL +     flight      healthy  per batch)
//               ladder +     negative  keys)       replicas)
//               queue        entries)
//               bound)
//
//   worker: materialise fault verdict / execute backend replica ──
//           cache.put (TTL) ── router.on_complete ── reply leader + waiters
//
// Request keys hash to a locality shard; a key's cache stripe, coalescer
// stripe and pool shard are all derived from the same composite key, so
// repeated work for one key stays on one domain (warm caches, local
// steals) and two hot keys on different shards never contend.
//
// Replication: each admitted leader is routed to one of N backend replicas
// by the Router (weighted power-of-two-choices over EWMA scores, with
// health-based ejection — see router.hpp). The route and the FaultPlan
// verdict settle at offer() time on the ingress thread, so the whole
// eject/probe/recover sequence is a pure function of the request stream;
// the worker merely materialises the verdict (fail fast, or re-execute
// slow_factor times) and reports the measured latency back.
//
// Threading contract: offer()/flush()/drain() are called by ONE ingress
// thread (the admission controller, router health machine and batcher are
// single-writer by design); execution and completion run concurrently on
// pool workers. All cross-thread counters are atomics — exact after
// drain(), like the pool's own Stats contract.
//
// Latency is measured from Request::arrival_s on the server's clock
// (start() zeroes it): for open-loop runs that is the *scheduled* arrival,
// so queueing delay under overload is charged to the server, not silently
// dropped (no coordinated omission).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "conc/striped_map.hpp"
#include "flow/channel.hpp"
#include "sched/thread_pool.hpp"
#include "serve/admission.hpp"
#include "serve/backend.hpp"
#include "serve/fault.hpp"
#include "serve/request.hpp"
#include "serve/router.hpp"
#include "support/clock.hpp"
#include "support/histogram.hpp"

namespace parc::serve {

struct ServerConfig {
  sched::WorkStealingPool::Config pool{};
  AdmissionConfig admission{};
  BackendConfig backend{};
  /// Replica routing + health; router.replicas = 1 degenerates to the
  /// unreplicated pipeline (every request routes to replica 0).
  RouterConfig router{};
  /// Injected degradation windows (empty = healthy run).
  FaultPlan fault_plan{};
  std::size_t cache_capacity = 1ull << 15;
  std::size_t cache_stripes = 16;
  /// Result TTL in seconds of scheduled time (entries expire at
  /// arrival + ttl on the workload clock, so expiry is deterministic).
  /// 0 = results never expire.
  double cache_ttl_s = 0.0;
  /// Negative-cache TTL: a FAILED execution is cached for this long, so a
  /// hot key hammering a dead upstream fails fast at the ingress instead
  /// of re-dispatching every arrival. 0 = failures are never cached.
  double negative_ttl_s = 0.0;
  /// Requests accumulated per shard before the batch is sealed and
  /// submitted (one pool wakeup per batch). flush() seals partial batches.
  std::size_t batch_max = 32;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// How offer() disposed of the request.
  enum class Outcome : std::uint8_t {
    shed,        ///< refused by admission (rate, queue bound, or deadline)
    hit,         ///< answered inline from the result cache (± negative)
    coalesced,   ///< attached to an in-flight computation of the same key
    dispatched,  ///< became the leader of a new computation (batched)
  };

  /// Zero the latency clock. Call once, immediately before the first
  /// offer(); Request::arrival_s values are interpreted on this clock.
  void start() { clock_ = Stopwatch(); }

  /// Current time on the latency clock (closed-loop drivers stamp
  /// arrival_s with this at issue).
  [[nodiscard]] double now_s() const { return clock_.elapsed_s(); }

  /// Ingress: decide, answer or enqueue one request. Single-threaded.
  Outcome offer(const Request& req);

  /// Seal and submit every shard's partial batch. Required before any wait
  /// that expects in_flight() to reach zero — batched-but-unsubmitted
  /// requests count as in flight but are invisible to the pool.
  void flush();

  /// flush(), then cooperatively run pool work until every admitted
  /// request has completed. Exact-counter quiescent point.
  void drain();

  /// Admitted requests not yet completed (includes batched-not-yet-
  /// submitted ones; see flush()).
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Counter snapshot. Conservation invariants, exact after drain():
  ///   offered   == admitted + shed_rate + shed_queue + shed_deadline
  ///   admitted  == hits_inline + negative_hits + coalesced + executed
  ///                + in_flight
  ///   completed + failed == admitted - in_flight
  ///   failed    == negative_hits + failed executions propagated to their
  ///                leader and coalesced waiters
  ///   cache misses at the ingress == executed + coalesced (+ leader
  ///   re-executions after an eviction/expiry races an attach, counted
  ///   once as executed)
  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t hits_inline = 0;    ///< positive hits at the ingress
    std::uint64_t negative_hits = 0;  ///< cached failures: fail-fast replies
    std::uint64_t coalesced = 0;      ///< merged into an in-flight key
    std::uint64_t executed = 0;       ///< executions (batch leaders)
    std::uint64_t batches = 0;        ///< submit_bulk calls
    std::uint64_t completed = 0;      ///< successful replies delivered
    std::uint64_t failed = 0;         ///< failed replies delivered
    std::size_t in_flight = 0;
    /// Per-priority admission splits (index = Priority); offered_by sums
    /// to offered, admitted_by to admitted, shed_by to all shed causes.
    std::array<std::uint64_t, kPriorities> offered_by{};
    std::array<std::uint64_t, kPriorities> admitted_by{};
    std::array<std::uint64_t, kPriorities> shed_by{};
    typename conc::StripedLruCache<std::uint64_t, BackendResult>::Stats cache;
    std::uint64_t net_timeouts = 0;
    Router::Stats router;
  };
  [[nodiscard]] Stats stats() const;

  /// Merged completion-latency histogram (seconds), all priorities.
  /// Successful replies only: fail-fast replies (injected faults, negative
  /// hits) would otherwise drag the percentiles *down* while the service
  /// degrades — the classic way a dashboard lies during an outage.
  [[nodiscard]] LogHistogram latency_histogram() const;
  /// Completion-latency histogram for one priority class.
  [[nodiscard]] LogHistogram latency_histogram(Priority p) const;

  [[nodiscard]] sched::WorkStealingPool& pool() noexcept { return *pool_; }
  [[nodiscard]] Backend& backend() noexcept { return backend_; }
  [[nodiscard]] Router& router() noexcept { return router_; }
  [[nodiscard]] const Router& router() const noexcept { return router_; }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }
  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

  /// The pool shard the composite key routes to (exposed for tests).
  [[nodiscard]] std::size_t shard_of(std::uint64_t ckey) const noexcept;

  /// Per-shard ingress channel counters (pushed/popped/high-water). The
  /// ingress batcher is a flow::Channel per shard, so batch occupancy is
  /// observable the same way as any pipeline stage.
  [[nodiscard]] std::vector<flow::ChannelStats> ingress_stats() const;

 private:
  struct ExecItem {
    std::uint64_t ckey = 0;
    RequestKind kind = RequestKind::img;
    std::uint64_t key = 0;
    std::uint64_t leader_id = 0;
    double arrival_s = 0.0;
    std::size_t shard = 0;
    std::size_t replica = 0;        ///< settled at route time
    std::uint32_t slow_factor = 1;  ///< fault verdict: re-execute this often
    bool injected_fail = false;     ///< fault verdict: fail fast, no work
    Priority priority = Priority::normal;
  };
  struct Waiter {
    std::uint64_t id = 0;
    double arrival_s = 0.0;
    Priority priority = Priority::normal;
  };
  struct InFlightNode {
    std::uint64_t leader_id = 0;
    std::vector<Waiter> waiters;
  };
  struct alignas(64) CoalesceStripe {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, InFlightNode> nodes;
  };
  static constexpr std::size_t kLatSlots = 16;
  struct alignas(64) LatencySlot {
    mutable std::mutex mutex;
    /// seconds: 0.1 µs .. 100 s; one histogram per priority class
    std::array<LogHistogram, kPriorities> hist{LogHistogram{1e-7, 1e2},
                                               LogHistogram{1e-7, 1e2},
                                               LogHistogram{1e-7, 1e2}};
  };

  void seal_batch(std::size_t shard);
  void execute_item(const ExecItem& item);
  void complete_one(std::uint64_t id, double arrival_s, Priority priority,
                    bool ok);

  CoalesceStripe& coalesce_stripe(std::uint64_t ckey) noexcept {
    return *coalesce_[ckey * 0x9e3779b97f4a7c15ull >> 32 &
                      (coalesce_.size() - 1)];
  }

  ServerConfig cfg_;
  std::unique_ptr<sched::WorkStealingPool> pool_;
  Backend backend_;
  AdmissionController admission_;
  Router router_;
  conc::StripedLruCache<std::uint64_t, BackendResult> cache_;
  std::vector<std::unique_ptr<CoalesceStripe>> coalesce_;
  // Ingress→batch hand-off: one bounded SPSC channel per pool shard (the
  // single ingress thread is both producer and consumer — the channel is
  // the batch accumulator, so occupancy/high-water are first-class stats
  // and every enqueue shows up as a kChanPush in traces). seal_batch()
  // drains a shard's channel into seal_scratch_ and submits one bulk job.
  std::vector<std::unique_ptr<flow::Channel<ExecItem>>> ingress_;
  std::vector<ExecItem> seal_scratch_;  ///< ingress thread only
  std::array<LatencySlot, kLatSlots> latency_;
  Stopwatch clock_;

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> hits_inline_{0};
  std::atomic<std::uint64_t> negative_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::uint64_t batches_sealed_ = 0;  ///< ingress thread only

  // Process-wide obs counters (resolved once; hot-path add is one relaxed
  // fetch_add on a stable atomic).
  std::atomic<std::uint64_t>& ctr_admitted_;
  std::atomic<std::uint64_t>& ctr_shed_;
  std::atomic<std::uint64_t>& ctr_completed_;
};

}  // namespace parc::serve
