// The three request executors behind the serving stack.
//
//  - img: render a thumbnail — generate the procedural "photo" named by the
//    key and box-filter it down, returning the content hash (the cacheable
//    result a real image service would store).
//  - text: search — scan the corpus chunk named by the key for a
//    key-derived needle (BMH literal search), returning the match count.
//  - net: web fetch — check a connection out of a keep-alive pool keyed by
//    the key's host, burn the modelled transfer cost as CPU spin work
//    (sleeping would idle a pool worker; the serving stack measures
//    scheduling, not timers), and return the byte count.
//
// All three are pure functions of the key (given the construction-time
// seed), so results are cacheable and every run is reproducible. Execute
// is called concurrently from pool workers: the corpus is immutable after
// construction and the connection pool is internally synchronised.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/downloader.hpp"
#include "serve/request.hpp"

namespace parc::serve {

struct BackendConfig {
  std::uint32_t img_source_dim = 24;  ///< rendered source is dim × dim
  std::uint32_t img_thumb_dim = 8;
  std::size_t text_chunks = 256;      ///< corpus chunks generated up front
  std::size_t text_chunk_bytes = 4096;
  std::uint32_t net_hosts = 8;
  std::uint64_t net_spin_iters = 4000;  ///< modelled transfer cost (CPU)
  net::PoolOptions pool;                ///< keep-alive pool caps/timeout
  std::uint64_t seed = 42;
};

/// Why an execution failed. `timeout` is the organic "503 from upstream"
/// path (net pool exhausted past its acquire budget); `injected` marks a
/// FaultPlan verdict materialised by the worker (the replica was in an
/// error/blackout window at the request's scheduled arrival).
enum class BackendError : std::uint8_t { none = 0, timeout = 1, injected = 2 };

/// Typed execution result. A zero `value` with `error == none` is a real
/// answer ("fetched 0 bytes"); any other error means the request FAILED and
/// must be counted/propagated as a failure, never cached as a value.
struct BackendResult {
  std::uint64_t value = 0;
  BackendError error = BackendError::none;
  [[nodiscard]] bool ok() const noexcept { return error == BackendError::none; }
};

class Backend {
 public:
  explicit Backend(BackendConfig cfg);

  /// Do the work for (kind, key). On success `.value` is the cacheable
  /// result; a net-pool acquire timeout surfaces as
  /// `{0, BackendError::timeout}` instead of a silent 0 sentinel, so
  /// callers can distinguish "fetched 0 bytes" from "503".
  [[nodiscard]] BackendResult execute(RequestKind kind, std::uint64_t key);

  /// Connection-pool telemetry (net requests only).
  [[nodiscard]] net::ConnectionPool::Stats pool_stats() const {
    return pool_.stats();
  }
  /// Net fetches that could not get a connection before the pool timeout
  /// (they complete with BackendError::timeout).
  [[nodiscard]] std::uint64_t net_timeouts() const noexcept {
    return net_timeouts_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const BackendConfig& config() const noexcept { return cfg_; }

 private:
  BackendConfig cfg_;
  std::vector<std::string> corpus_;  ///< immutable after construction
  net::ConnectionPool pool_;
  std::atomic<std::uint64_t> net_timeouts_{0};
};

}  // namespace parc::serve
