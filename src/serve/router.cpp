#include "serve/router.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "support/check.hpp"

namespace parc::serve {

const char* to_string(ReplicaState s) noexcept {
  switch (s) {
    case ReplicaState::healthy:   return "healthy";
    case ReplicaState::ejected:   return "ejected";
    case ReplicaState::half_open: return "half-open";
  }
  return "?";
}

ReplicaHealth::ReplicaHealth(HealthConfig cfg) : cfg_(cfg) {
  PARC_CHECK(cfg_.fail_threshold >= 1);
  PARC_CHECK(cfg_.probe_backoff_s > 0.0);
  PARC_CHECK(cfg_.probe_backoff_max_s >= cfg_.probe_backoff_s);
}

ReplicaState ReplicaHealth::state(double sched_s) const noexcept {
  if (base_ == ReplicaState::healthy) return ReplicaState::healthy;
  return sched_s >= next_probe_s_ ? ReplicaState::half_open
                                  : ReplicaState::ejected;
}

ReplicaHealth::Transition ReplicaHealth::on_result(bool ok,
                                                   double sched_s) noexcept {
  // Completion-side organic reports can carry arrival stamps older than
  // the ingress has already advanced past; keep the machine's clock
  // monotone so a stale report cannot un-expire a scheduled probe.
  last_s_ = std::max(last_s_, sched_s);
  const double t = last_s_;

  Transition tr;
  tr.from = state(t);
  switch (tr.from) {
    case ReplicaState::healthy:
      if (ok) {
        fails_ = 0;
      } else if (++fails_ >= cfg_.fail_threshold) {
        base_ = ReplicaState::ejected;
        backoff_ = cfg_.probe_backoff_s;
        next_probe_s_ = t + backoff_;
        ++ejections_;
        tr.ejected = true;
      }
      break;
    case ReplicaState::half_open:
      // This result settles the probe.
      ++probes_;
      tr.probe = true;
      if (ok) {
        base_ = ReplicaState::healthy;
        fails_ = 0;
        backoff_ = 0.0;
        next_probe_s_ = kNever;
        ++recoveries_;
        tr.recovered = true;
      } else {
        ++probe_failures_;
        tr.probe_failed = true;
        backoff_ = std::min(backoff_ * 2.0, cfg_.probe_backoff_max_s);
        next_probe_s_ = t + backoff_;
      }
      break;
    case ReplicaState::ejected:
      // Forced traffic while backing off (every replica was down). Success
      // recovers — the replica evidently works; failure changes nothing
      // (backoff doubling is reserved for scheduled probes, so a blackout
      // cannot stampede the backoff to its cap).
      if (ok) {
        base_ = ReplicaState::healthy;
        fails_ = 0;
        backoff_ = 0.0;
        next_probe_s_ = kNever;
        ++recoveries_;
        tr.recovered = true;
      }
      break;
  }
  tr.to = state(t);
  return tr;
}

Router::Router(RouterConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed == 0 ? 1 : cfg_.seed) {
  PARC_CHECK(cfg_.replicas >= 1);
  PARC_CHECK(cfg_.ewma_alpha >= 0.0 && cfg_.ewma_alpha <= 1.0);
  PARC_CHECK(cfg_.error_penalty >= 0.0);
  PARC_CHECK(cfg_.initial_latency_s > 0.0);
  PARC_CHECK(cfg_.weights.empty() || cfg_.weights.size() == cfg_.replicas);
  slots_.reserve(cfg_.replicas);
  for (std::size_t i = 0; i < cfg_.replicas; ++i) {
    slots_.emplace_back(cfg_.health);
    ReplicaSlot& slot = slots_.back();
    slot.weight = cfg_.weights.empty() ? 1.0 : cfg_.weights[i];
    PARC_CHECK(slot.weight > 0.0);
    slot.ewma_latency_s = cfg_.initial_latency_s;
  }
  avail_.reserve(cfg_.replicas);
}

std::size_t Router::draw(const std::vector<std::size_t>& avail) {
  double total = 0.0;
  for (const std::size_t i : avail) total += slots_[i].weight;
  const double u = rng_.uniform() * total;
  double acc = 0.0;
  for (const std::size_t i : avail) {
    acc += slots_[i].weight;
    if (u < acc) return i;
  }
  return avail.back();
}

void Router::apply_transition(std::size_t replica,
                              const ReplicaHealth::Transition& tr) {
  if (!obs::tracing()) [[likely]] { return; }
  if (tr.ejected) {
    obs::emit(obs::EventKind::kEject, replica,
              slots_[replica].health.consecutive_failures());
  }
  if (tr.probe) {
    obs::emit(obs::EventKind::kProbe, replica, tr.probe_failed ? 2 : 1);
  }
}

Router::Route Router::route(std::uint64_t request_id, double sched_s) {
  std::scoped_lock lock(mutex_);
  Route out;

  // Half-open replicas take priority: their probe IS the next request (one
  // at a time — the verdict settles below, so there is no pile-up window).
  double best_probe = std::numeric_limits<double>::infinity();
  std::size_t probe_idx = cfg_.replicas;
  avail_.clear();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    switch (slots_[i].health.state(sched_s)) {
      case ReplicaState::healthy:
        avail_.push_back(i);
        break;
      case ReplicaState::half_open:
        if (slots_[i].health.next_probe_s() < best_probe) {
          best_probe = slots_[i].health.next_probe_s();
          probe_idx = i;
        }
        break;
      case ReplicaState::ejected:
        break;
    }
  }

  if (probe_idx < cfg_.replicas) {
    out.replica = probe_idx;
    out.probe = true;
  } else if (!avail_.empty()) {
    if (avail_.size() == 1) {
      out.replica = avail_.front();
    } else {
      // Weighted power-of-two-choices: two weighted draws, keep the lower
      // EWMA latency/error score (tie → the first draw).
      const std::size_t a = draw(avail_);
      const std::size_t b = draw(avail_);
      out.replica = score(slots_[b]) < score(slots_[a]) ? b : a;
    }
  } else {
    // Total blackout: best-effort route to the replica whose probe is due
    // soonest. The request still executes (conservation), and a success
    // recovers the replica early.
    std::size_t best = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].health.next_probe_s() <
          slots_[best].health.next_probe_s()) {
        best = i;
      }
    }
    out.replica = best;
    out.forced = true;
    ++forced_routes_;
  }

  out.verdict = plan_.decide(out.replica, sched_s, request_id);

  ReplicaSlot& slot = slots_[out.replica];
  ++slot.routed;
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kReplicaPick, request_id, out.replica);
    if (out.probe) obs::emit(obs::EventKind::kProbe, out.replica, 0);
  }
  if (out.verdict.fail) {
    ++slot.failed;
    ++failed_injected_;
  }
  const ReplicaHealth::Transition tr =
      slot.health.on_result(!out.verdict.fail, sched_s);
  apply_transition(out.replica, tr);
  return out;
}

void Router::on_complete(std::uint64_t request_id, std::size_t replica,
                         bool ok, bool injected, double latency_s,
                         double sched_s) {
  PARC_DCHECK(replica < slots_.size());
  std::scoped_lock lock(mutex_);
  ReplicaSlot& slot = slots_[replica];
  const double a = cfg_.ewma_alpha;
  slot.ewma_latency_s = a * latency_s + (1.0 - a) * slot.ewma_latency_s;
  slot.ewma_error = a * (ok ? 0.0 : 1.0) + (1.0 - a) * slot.ewma_error;
  if (!ok && obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kReplicaFail, request_id, replica);
  }
  if (!ok && !injected) {
    // Organic failure (e.g. net-pool timeout): the route-time verdict said
    // ok, so the streak must advance here instead.
    ++slot.failed;
    ++failed_organic_;
    const ReplicaHealth::Transition tr =
        slot.health.on_result(false, sched_s);
    apply_transition(replica, tr);
  }
}

std::vector<Router::ReplicaSnapshot> Router::snapshot(double sched_s) const {
  std::scoped_lock lock(mutex_);
  std::vector<ReplicaSnapshot> out;
  out.reserve(slots_.size());
  for (const ReplicaSlot& slot : slots_) {
    ReplicaSnapshot s;
    s.state = slot.health.state(sched_s);
    s.consecutive_failures = slot.health.consecutive_failures();
    s.ewma_latency_s = slot.ewma_latency_s;
    s.ewma_error = slot.ewma_error;
    s.score = score(slot);
    s.next_probe_s = slot.health.next_probe_s();
    s.backoff_s = slot.health.backoff_s();
    s.routed = slot.routed;
    s.failed = slot.failed;
    s.ejections = slot.health.ejections();
    s.probes = slot.health.probes();
    s.probe_failures = slot.health.probe_failures();
    s.recoveries = slot.health.recoveries();
    out.push_back(s);
  }
  return out;
}

Router::Stats Router::stats() const {
  std::scoped_lock lock(mutex_);
  Stats out;
  for (const ReplicaSlot& slot : slots_) {
    out.routed += slot.routed;
    out.ejections += slot.health.ejections();
    out.probes += slot.health.probes();
    out.probe_failures += slot.health.probe_failures();
    out.recoveries += slot.health.recoveries();
  }
  out.failed_injected = failed_injected_;
  out.failed_organic = failed_organic_;
  out.forced_routes = forced_routes_;
  return out;
}

}  // namespace parc::serve
