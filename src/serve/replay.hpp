// Trace → TaskDag replay for the serving stack (the 1-core-container
// substitution, applied to serving).
//
// A traced run records, per request, when it arrived (kServeArrive) and how
// long its backend execution took (kServeExecBegin/End). From those two
// facts the run is rebuilt as a DAG:
//
//   ingress chain:  a0 ─▶ a1 ─▶ a2 ─▶ ...   (cost = inter-arrival gap —
//                                            the serial offered-load clock)
//   exec tasks:     ai ─▶ exec_i             (cost = measured exec time,
//                                            only for executed requests)
//
// sim::simulate then replays the DAG on a P-core machine: cores beyond the
// chain's span do nothing for the ingress but absorb exec tasks in
// parallel, so sweeping P shows exactly where the serving knee sits — the
// point where adding cores stops helping because the offered load (the
// chain) or the per-request work (the widest burst) is the binding
// constraint. Same greedy list scheduler, same validity anchors
// (work/P ≤ makespan ≤ work/P + span) as the compute replays.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/machine.hpp"

namespace parc::serve {

struct ReplayDag {
  sim::TaskDag dag;
  std::uint64_t arrivals = 0;   ///< requests offered in the trace
  std::uint64_t executed = 0;   ///< requests with a measured exec span
  double ingress_span_s = 0.0;  ///< total inter-arrival time (chain work)
  double exec_work_s = 0.0;     ///< total measured backend work
  /// Per executed request: its arrival node (on the ingress chain) and its
  /// exec node, in arrival order. Lets latency what-ifs read simulated
  /// per-request latency (exec finish − arrival offset) off a
  /// record_task_finish replay instead of only the makespan.
  struct RequestRef {
    sim::TaskDag::NodeId arrive = 0;
    sim::TaskDag::NodeId exec = 0;
    double arrival_s = 0.0;  ///< trace arrival offset from the first arrival
    /// Replica the router picked (kReplicaPick); kNoReplica when the trace
    /// predates replication or the pick event was dropped.
    std::size_t replica = kNoReplica;
    bool failed = false;  ///< a kReplicaFail was recorded for this request
  };
  static constexpr std::size_t kNoReplica = ~static_cast<std::size_t>(0);
  std::vector<RequestRef> requests;
  /// Per-replica load attribution from the routing events (indexed by
  /// replica id; sized to the largest replica seen, empty for unreplicated
  /// traces). `routed` counts every kReplicaPick — including requests whose
  /// exec span was dropped — so it can exceed the sum of exec spans.
  struct ReplicaLoad {
    std::uint64_t routed = 0;
    std::uint64_t failed = 0;      ///< kReplicaFail count on this replica
    double exec_work_s = 0.0;      ///< measured work that landed here
  };
  std::vector<ReplicaLoad> replicas;
};

/// Build the serving DAG from a trace. Requests whose exec begin/end pair
/// was dropped (buffer exhaustion) are skipped; run with a large enough
/// TraceConfig and assert total_dropped() == 0 for exact replays.
[[nodiscard]] ReplayDag build_serve_dag(const obs::TraceDump& dump);

/// Simulate the replay DAG at `machine` (record_task_finish is forced on)
/// and return each executed request's latency: exec-task finish minus the
/// request's trace arrival offset. Sorted ascending, so percentiles are
/// index lookups. Empty when the replay executed no requests.
[[nodiscard]] std::vector<double> replay_latencies(
    const ReplayDag& replay, const sim::MachineParams& machine);

}  // namespace parc::serve
