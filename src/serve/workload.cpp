#include "serve/workload.hpp"

#include "support/check.hpp"

namespace parc::serve {

LoadGenerator::LoadGenerator(WorkloadConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  PARC_CHECK(cfg_.requests >= 1);
  PARC_CHECK(cfg_.keyspace >= 1);
  PARC_CHECK(cfg_.keyspace < (1ull << 56));  // composite_key tag headroom
  PARC_CHECK(cfg_.key_skew >= 0.0);
  PARC_CHECK(cfg_.arrival_rate >= 0.0);
  const double total =
      cfg_.weight_img + cfg_.weight_text + cfg_.weight_net;
  PARC_CHECK(total > 0.0);
  cum_img_ = cfg_.weight_img / total;
  cum_text_ = cum_img_ + cfg_.weight_text / total;
  const double ptotal =
      cfg_.weight_high + cfg_.weight_normal + cfg_.weight_low;
  PARC_CHECK(ptotal > 0.0);
  PARC_CHECK(cfg_.deadline_slack_s >= 0.0);
  cum_high_ = cfg_.weight_high / ptotal;
  cum_normal_ = cum_high_ + cfg_.weight_normal / ptotal;
}

Request LoadGenerator::next() {
  Request r;
  r.id = ++issued_;
  if (cfg_.arrival_rate > 0.0) {
    clock_s_ += rng_.exponential(1.0 / cfg_.arrival_rate);
    r.arrival_s = clock_s_;
  }
  const double pick = rng_.uniform();
  r.kind = pick < cum_img_    ? RequestKind::img
           : pick < cum_text_ ? RequestKind::text
                              : RequestKind::net;
  r.key = cfg_.key_skew > 0.0 ? rng_.zipf(cfg_.keyspace, cfg_.key_skew)
                              : rng_.below(cfg_.keyspace);
  const double prio = rng_.uniform();
  r.priority = prio < cum_high_    ? Priority::high
               : prio < cum_normal_ ? Priority::normal
                                    : Priority::low;
  if (cfg_.deadline_slack_s > 0.0 && cfg_.arrival_rate > 0.0) {
    r.deadline_s = r.arrival_s + cfg_.deadline_slack_s;
  }
  return r;
}

std::vector<Request> generate(const WorkloadConfig& cfg) {
  LoadGenerator gen(cfg);
  std::vector<Request> out;
  out.reserve(cfg.requests);
  for (std::size_t i = 0; i < cfg.requests; ++i) out.push_back(gen.next());
  return out;
}

}  // namespace parc::serve
