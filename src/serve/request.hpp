// parc::serve request model.
//
// A request names a *kind* (which backend does the work) and a *key* (which
// item of that backend's keyspace). The serving stack treats the pair as
// one 64-bit composite key end to end: the result cache, the in-flight
// coalescer, and the shard router all hash the same value, so an img
// request for key 7 and a text request for key 7 never collide.
#pragma once

#include <cstdint>
#include <string>

namespace parc::serve {

/// The three request classes the stack serves, mirroring the course's
/// project workloads: thumbnail rendering (img), corpus search (text), and
/// web fetch through a keep-alive connection pool (net).
enum class RequestKind : std::uint8_t { img = 0, text = 1, net = 2 };

inline constexpr std::size_t kRequestKinds = 3;

[[nodiscard]] inline std::string to_string(RequestKind k) {
  switch (k) {
    case RequestKind::img:  return "img";
    case RequestKind::text: return "text";
    case RequestKind::net:  return "net";
  }
  return "?";
}

/// Request priority classes, highest first. Under overload the admission
/// ladder sheds the lowest class first (reserve thresholds monotone in
/// priority — see AdmissionConfig), so `high` traffic keeps its latency
/// envelope while `low` absorbs the shedding.
enum class Priority : std::uint8_t { high = 0, normal = 1, low = 2 };

inline constexpr std::size_t kPriorities = 3;

[[nodiscard]] inline std::string to_string(Priority p) {
  switch (p) {
    case Priority::high:   return "high";
    case Priority::normal: return "normal";
    case Priority::low:    return "low";
  }
  return "?";
}

/// One request as the load generator emits it. `arrival_s` is the
/// *scheduled* arrival on the driver's clock — open-loop latency is always
/// measured from here, not from when the server got around to looking at
/// the request, so queueing delay is charged to the server (no coordinated
/// omission).
struct Request {
  std::uint64_t id = 0;  ///< 1-based issue order (also the trace span id)
  RequestKind kind = RequestKind::img;
  std::uint64_t key = 0;
  double arrival_s = 0.0;
  Priority priority = Priority::normal;
  /// Absolute completion deadline on the same clock as `arrival_s`;
  /// 0 = none. A request already expired at its scheduled arrival is shed
  /// by admission (shed_deadline), never queued.
  double deadline_s = 0.0;
};

/// (kind, key) folded into the one cache/coalescer/router key. Keys are
/// generated below 2^56, so the kind tag in the top byte cannot collide.
[[nodiscard]] inline std::uint64_t composite_key(RequestKind kind,
                                                 std::uint64_t key) noexcept {
  return (static_cast<std::uint64_t>(kind) << 56) | (key & ((1ull << 56) - 1));
}

}  // namespace parc::serve
