// Deterministic fault injection for the replicated serving stack.
//
// A FaultPlan is a seeded list of per-replica windows on *scheduled* time:
//
//   blackout  — every request routed to the replica inside the window fails
//               (connection refused: fail-fast, no backend work);
//   error     — each request fails with probability `error_prob`, decided by
//               hashing (seed, window, request id) — a pure function, never
//               a wall-clock or thread-timing draw;
//   slowdown  — requests succeed but the worker re-executes the backend
//               work `slow_factor` times (a saturated upstream serving
//               slowly rather than erroring).
//
// Because verdicts key on the request's scheduled arrival and seeded id,
// every degradation scenario replays bit-identically: the router's
// ejection/half-open/recovery sequence under a plan is a pure function of
// the workload stream, which is what lets serve_fault_test assert the full
// state machine against a hand-computed oracle and lets a concurrent run be
// cross-checked against a sequential one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parc::serve {

enum class FaultKind : std::uint8_t { blackout = 0, error = 1, slowdown = 2 };

struct FaultWindow {
  std::size_t replica = 0;
  double begin_s = 0.0;  ///< scheduled-time window [begin_s, end_s)
  double end_s = 0.0;
  FaultKind kind = FaultKind::blackout;
  double error_prob = 1.0;        ///< error windows only
  std::uint32_t slow_factor = 2;  ///< slowdown windows only (work multiplier)
};

/// Verdict for one routed request. `fail` wins over `slow_factor`; when
/// several slowdown windows overlap the largest factor applies.
struct FaultDecision {
  bool fail = false;
  std::uint32_t slow_factor = 1;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultWindow> windows, std::uint64_t seed = 1);

  /// The plan's verdict for request `request_id` routed to `replica` at
  /// scheduled time `sched_s`. Pure and const: same arguments, same answer,
  /// on every call and in every process.
  [[nodiscard]] FaultDecision decide(std::size_t replica, double sched_s,
                                     std::uint64_t request_id) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }
  [[nodiscard]] const std::vector<FaultWindow>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Convenience: one total blackout of `replica` over [begin_s, end_s).
  [[nodiscard]] static FaultPlan blackout(std::size_t replica, double begin_s,
                                          double end_s);

 private:
  std::vector<FaultWindow> windows_;
  std::uint64_t seed_ = 1;
};

}  // namespace parc::serve
