#include "serve/backend.hpp"

#include "img/image.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"
#include "text/search.hpp"

namespace parc::serve {

namespace {

/// Deterministic lowercase "document" text with word structure, so literal
/// search has realistic match statistics.
std::string make_chunk(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::string out;
  out.reserve(bytes);
  while (out.size() < bytes) {
    const std::size_t len = 2 + rng.below(8);
    for (std::size_t i = 0; i < len && out.size() < bytes; ++i) {
      out.push_back(static_cast<char>('a' + rng.below(26)));
    }
    if (out.size() < bytes) out.push_back(' ');
  }
  return out;
}

}  // namespace

Backend::Backend(BackendConfig cfg) : cfg_(cfg), pool_(cfg.pool) {
  PARC_CHECK(cfg_.img_source_dim >= cfg_.img_thumb_dim);
  PARC_CHECK(cfg_.text_chunks >= 1);
  PARC_CHECK(cfg_.net_hosts >= 1);
  corpus_.reserve(cfg_.text_chunks);
  for (std::size_t i = 0; i < cfg_.text_chunks; ++i) {
    corpus_.push_back(make_chunk(cfg_.text_chunk_bytes, cfg_.seed + i));
  }
}

BackendResult Backend::execute(RequestKind kind, std::uint64_t key) {
  switch (kind) {
    case RequestKind::img: {
      const img::Image src = img::generate_image(
          cfg_.img_source_dim, cfg_.img_source_dim, cfg_.seed ^ key);
      const img::Image thumb = img::resize(src, cfg_.img_thumb_dim,
                                           cfg_.img_thumb_dim,
                                           img::Filter::kBox);
      return {thumb.content_hash(), BackendError::none};
    }
    case RequestKind::text: {
      const std::string& chunk = corpus_[key % corpus_.size()];
      // Two-letter needle derived from the key: common enough to match,
      // cheap enough that search cost is dominated by the scan.
      char needle[3] = {static_cast<char>('a' + key % 26),
                        static_cast<char>('a' + (key / 26) % 26), '\0'};
      return {text::find_all_literal(chunk, needle).size(),
              BackendError::none};
    }
    case RequestKind::net: {
      const auto host = static_cast<std::uint32_t>(key % cfg_.net_hosts);
      auto lease = pool_.acquire(host);
      if (!lease.valid) {
        net_timeouts_.fetch_add(1, std::memory_order_relaxed);
        return {0, BackendError::timeout};
      }
      const std::uint64_t bytes =
          1024 + spin_work(cfg_.net_spin_iters) % 4096;
      pool_.release(lease);
      return {bytes, BackendError::none};
    }
  }
  return {0, BackendError::none};
}

}  // namespace parc::serve
