// Admission control: the piece that turns overload into bounded, *counted*
// shedding instead of unbounded queueing — now priority- and deadline-
// aware, so the shedding is drawn from the cheapest work first.
//
// Gates, applied in order at the ingress:
//
//  1. Deadline: a request already expired at its *scheduled* arrival
//     (arrival_s > deadline_s) is shed immediately (shed_deadline). Work
//     that cannot possibly be useful never occupies a queue slot.
//
//  2. A token bucket over the request *schedule*: tokens refill at `rate`
//     per second of scheduled-arrival time and cap at `burst`. Refilling on
//     the schedule (not the wall clock) makes the bucket's verdicts a pure
//     function of the workload — the same stream sheds the same request
//     ids on every run, which the bench's conservation assertions rely on.
//     Priority ladder: class p admits only while
//     tokens ≥ 1 + reserve(p) · burst, with reserve(high)=0 <
//     reserve(normal) < reserve(low). The monotone reserves are what makes
//     "no higher-priority request is shed while a lower-priority one is
//     admitted" provable: within any window shorter than
//     (reserve(q) − reserve(p)) · burst / rate the refill cannot climb from
//     below class p's threshold to above class q's
//     (serve_fault_test::Admission* property-checks exactly this).
//
//  3. A bound on requests concurrently inside the server (`max_pending`),
//     with the same ladder: class p admits only while
//     in_flight < pending_fraction(p) · max_pending.
//
// Single-writer by design: one ingress thread calls admit(); the counters
// are plain integers read after the run. (The server's own cross-thread
// accounting is atomic; this object is deliberately not.)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "serve/request.hpp"

namespace parc::serve {

struct AdmissionConfig {
  /// Token refill rate, requests/second of scheduled time. 0 = no rate gate.
  double rate = 0.0;
  /// Bucket capacity (burst tolerance), in requests.
  double burst = 256.0;
  /// Max requests admitted but not yet completed. 0 = no queue gate.
  std::size_t max_pending = 8192;
  /// Token reserve each class must leave untouched, as a fraction of
  /// `burst`. high is implicitly 0; the ladder must be monotone
  /// (0 ≤ reserve_normal ≤ reserve_low < 1).
  double reserve_normal = 0.1;
  double reserve_low = 0.3;
  /// Pending-slot fraction each class may fill (high implicitly 1;
  /// 0 < pending_low ≤ pending_normal ≤ 1).
  double pending_normal = 0.8;
  double pending_low = 0.5;
};

class AdmissionController {
 public:
  enum class Decision : std::uint8_t {
    admit,
    shed_rate,      ///< bucket below this class's reserve at its arrival
    shed_queue,     ///< this class's share of pending slots is full
    shed_deadline,  ///< already expired at its scheduled arrival
  };

  explicit AdmissionController(AdmissionConfig cfg);

  /// Decide one request. `arrival_s` must be non-decreasing across calls
  /// (the generator's schedule is); `in_flight` is the server's current
  /// admitted-but-unfinished count.
  [[nodiscard]] Decision admit(double arrival_s, Priority priority,
                               double deadline_s, std::size_t in_flight);

  /// Token reserve (absolute tokens, not fraction) class `p` must leave.
  [[nodiscard]] double reserve_tokens(Priority p) const noexcept {
    return reserves_[static_cast<std::size_t>(p)];
  }
  /// Pending-slot cap for class `p` (0 = no queue gate).
  [[nodiscard]] std::size_t pending_cap(Priority p) const noexcept {
    return pending_caps_[static_cast<std::size_t>(p)];
  }

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue = 0;
    std::uint64_t shed_deadline = 0;
    /// Per-priority splits (index = Priority); each row sums over classes
    /// to its aggregate above.
    std::array<std::uint64_t, kPriorities> offered_by{};
    std::array<std::uint64_t, kPriorities> admitted_by{};
    std::array<std::uint64_t, kPriorities> shed_by{};  ///< all shed causes
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }

 private:
  AdmissionConfig cfg_;
  double tokens_;
  double last_refill_s_ = 0.0;
  std::array<double, kPriorities> reserves_{};
  std::array<std::size_t, kPriorities> pending_caps_{};
  Stats stats_;
};

}  // namespace parc::serve
