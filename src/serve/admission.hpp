// Admission control: the piece that turns overload into bounded, *counted*
// shedding instead of unbounded queueing.
//
// Two gates, applied in order at the ingress:
//
//  1. A token bucket over the request *schedule*: tokens refill at `rate`
//     per second of scheduled-arrival time and cap at `burst`. Refilling on
//     the schedule (not the wall clock) makes the bucket's verdicts a pure
//     function of the workload — the same stream sheds the same request
//     ids on every run, which the bench's conservation assertions rely on.
//
//  2. A bound on requests concurrently inside the server (`max_pending`):
//     admitted-but-unfinished work is live state (coalescer nodes, batch
//     slots, pool queue entries), and a server that admits faster than it
//     completes must eventually refuse — this is the refusal, counted.
//
// Single-writer by design: one ingress thread calls admit(); the counters
// are plain integers read after the run. (The server's own cross-thread
// accounting is atomic; this object is deliberately not.)
#pragma once

#include <cstddef>
#include <cstdint>

namespace parc::serve {

struct AdmissionConfig {
  /// Token refill rate, requests/second of scheduled time. 0 = no rate gate.
  double rate = 0.0;
  /// Bucket capacity (burst tolerance), in requests.
  double burst = 256.0;
  /// Max requests admitted but not yet completed. 0 = no queue gate.
  std::size_t max_pending = 8192;
};

class AdmissionController {
 public:
  enum class Decision : std::uint8_t {
    admit,
    shed_rate,   ///< token bucket empty at this request's scheduled arrival
    shed_queue,  ///< too many admitted requests still in flight
  };

  explicit AdmissionController(AdmissionConfig cfg);

  /// Decide one request. `arrival_s` must be non-decreasing across calls
  /// (the generator's schedule is); `in_flight` is the server's current
  /// admitted-but-unfinished count.
  [[nodiscard]] Decision admit(double arrival_s, std::size_t in_flight);

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }

 private:
  AdmissionConfig cfg_;
  double tokens_;
  double last_refill_s_ = 0.0;
  Stats stats_;
};

}  // namespace parc::serve
