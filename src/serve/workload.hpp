// Deterministic load generation for the serving stack.
//
// Open loop: arrivals are a Poisson process at `arrival_rate` — the
// generator schedules request i at (i.i.d. exponential gaps summed), and
// the driver issues each request when the wall clock reaches its scheduled
// time whether or not earlier requests have finished. That is the honest
// way to load a server: a slow server does not slow the clients down, it
// accumulates queueing delay (measured from the *scheduled* arrival).
//
// Closed loop (arrival_rate == 0): the generator emits requests with no
// schedule and the driver keeps a fixed number in flight, issuing the next
// when one completes — the "how fast can it go" mode used to calibrate
// capacity before picking open-loop rates.
//
// Keys are Zipf-skewed over the keyspace (s == 0 → uniform), kinds drawn
// from the configured mix. Everything derives from one seed: the same
// config always produces byte-identical request streams.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"
#include "support/rng.hpp"

namespace parc::serve {

struct WorkloadConfig {
  std::size_t requests = 100000;
  /// Offered load, requests/second. 0 = closed loop (no schedule).
  double arrival_rate = 50000.0;
  /// Distinct keys per kind; Zipf-ranked (key 0 hottest).
  std::uint64_t keyspace = 1ull << 16;
  /// Zipf exponent for key popularity. 0 = uniform.
  double key_skew = 1.1;
  /// Request mix, normalised internally. Defaults ~ the course's projects:
  /// mostly reads of rendered/searchable content, some web fetches.
  double weight_img = 0.45;
  double weight_text = 0.45;
  double weight_net = 0.10;
  /// Priority mix, normalised internally. Defaults: a small latency-
  /// critical class, a normal bulk, and a sheddable background class.
  double weight_high = 0.2;
  double weight_normal = 0.5;
  double weight_low = 0.3;
  /// Deadline slack: each open-loop request gets
  /// deadline_s = arrival_s + deadline_slack_s. 0 = no deadlines. (Closed-
  /// loop streams have no schedule, hence no generated deadlines.)
  double deadline_slack_s = 0.0;
  std::uint64_t seed = 1;
};

/// Streaming generator; next() is O(1) and the stream depends only on the
/// config (not on call timing).
class LoadGenerator {
 public:
  explicit LoadGenerator(WorkloadConfig cfg);

  /// The next request. Open loop: arrival_s carries the schedule. Closed
  /// loop: arrival_s == 0 (the driver stamps the issue time).
  [[nodiscard]] Request next();

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  WorkloadConfig cfg_;
  Rng rng_;
  std::uint64_t issued_ = 0;
  double clock_s_ = 0.0;
  double cum_img_ = 0.0;   ///< normalised mix thresholds
  double cum_text_ = 0.0;
  double cum_high_ = 0.0;  ///< normalised priority thresholds
  double cum_normal_ = 0.0;
};

/// Materialise the whole stream (tests and the replay harness).
[[nodiscard]] std::vector<Request> generate(const WorkloadConfig& cfg);

}  // namespace parc::serve
