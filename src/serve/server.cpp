#include "serve/server.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace parc::serve {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t mix(std::uint64_t x) noexcept {
  // splitmix64 finaliser: decorrelates the shard choice from the cache /
  // coalescer stripe choice (which use other bit ranges of the same key).
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      pool_(std::make_unique<sched::WorkStealingPool>(cfg_.pool)),
      backend_(cfg_.backend),
      admission_(cfg_.admission),
      router_(cfg_.router),
      cache_(cfg_.cache_capacity, cfg_.cache_stripes),
      ctr_admitted_(obs::Counters::global().get("serve.admitted")),
      ctr_shed_(obs::Counters::global().get("serve.shed")),
      ctr_completed_(obs::Counters::global().get("serve.completed")) {
  PARC_CHECK(cfg_.batch_max >= 1);
  PARC_CHECK(cfg_.cache_ttl_s >= 0.0);
  PARC_CHECK(cfg_.negative_ttl_s >= 0.0);
  router_.set_fault_plan(cfg_.fault_plan);
  const std::size_t stripes = round_up_pow2(std::max<std::size_t>(
      1, cfg_.cache_stripes));
  coalesce_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    coalesce_.push_back(std::make_unique<CoalesceStripe>());
  }
  ingress_.reserve(pool_->shard_count());
  for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
    ingress_.push_back(std::make_unique<flow::Channel<ExecItem>>(
        flow::ChannelOptions{.capacity = cfg_.batch_max, .spsc = true}));
  }
  seal_scratch_.reserve(cfg_.batch_max);
}

Server::~Server() { drain(); }

std::size_t Server::shard_of(std::uint64_t ckey) const noexcept {
  return static_cast<std::size_t>(mix(ckey) % pool_->shard_count());
}

Server::Outcome Server::offer(const Request& req) {
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kServeArrive, req.id,
              static_cast<std::uint64_t>(req.kind));
  }
  const auto decision =
      admission_.admit(req.arrival_s, req.priority, req.deadline_s,
                       in_flight_.load(std::memory_order_relaxed));
  if (decision != AdmissionController::Decision::admit) {
    ctr_shed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::tracing()) [[unlikely]] {
      if (decision == AdmissionController::Decision::shed_deadline) {
        obs::emit(obs::EventKind::kDeadlineShed, req.id,
                  static_cast<std::uint64_t>(req.priority));
      } else {
        obs::emit(
            obs::EventKind::kServeShed, req.id,
            decision == AdmissionController::Decision::shed_rate ? 0 : 1);
      }
    }
    return Outcome::shed;
  }
  ctr_admitted_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_release);

  const std::uint64_t ckey = composite_key(req.kind, req.key);
  if (const auto cached = cache_.get(ckey, req.arrival_s)) {
    const bool ok = cached->ok();
    if (ok) {
      hits_inline_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Negative hit: a recent execution of this key failed; fail fast
      // instead of re-dispatching into the same dead upstream.
      negative_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kServeHit, req.id, ok ? 0 : 1);
    }
    complete_one(req.id, req.arrival_s, req.priority, ok);
    return Outcome::hit;
  }

  {
    CoalesceStripe& st = coalesce_stripe(ckey);
    std::scoped_lock lock(st.mutex);
    auto [it, inserted] = st.nodes.try_emplace(ckey);
    if (!inserted) {
      it->second.waiters.push_back(Waiter{req.id, req.arrival_s,
                                          req.priority});
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (obs::tracing()) [[unlikely]] {
        obs::emit(obs::EventKind::kServeCoalesce, req.id,
                  it->second.leader_id);
      }
      return Outcome::coalesced;
    }
    it->second.leader_id = req.id;
  }

  // Leader: pick a replica and settle the fault verdict now, on the ingress
  // thread, so health transitions are a pure function of the stream (the
  // worker only materialises the verdict).
  const Router::Route rt = router_.route(req.id, req.arrival_s);

  const std::size_t shard = shard_of(ckey);
  flow::Channel<ExecItem>& chan = *ingress_[shard];
  ExecItem item{ckey,        req.kind,
                req.key,     req.id,
                req.arrival_s, shard,
                rt.replica,  rt.verdict.slow_factor,
                rt.verdict.fail, req.priority};
  if (chan.try_push(item) != flow::PushResult::ok) {
    // Capacity rounds up past batch_max, so this only fires if a seal was
    // somehow missed; never block the ingress — hand off and retry.
    seal_batch(shard);
    PARC_CHECK(chan.try_push(item) == flow::PushResult::ok);
  }
  if (chan.occupancy() >= cfg_.batch_max) seal_batch(shard);
  return Outcome::dispatched;
}

void Server::seal_batch(std::size_t shard) {
  flow::Channel<ExecItem>& chan = *ingress_[shard];
  seal_scratch_.clear();
  ExecItem item;
  while (chan.try_pop(item) == flow::PopResult::ok) {
    seal_scratch_.push_back(item);
  }
  if (seal_scratch_.empty()) return;
  ++batches_sealed_;
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kServeBatch, batches_sealed_,
              seal_scratch_.size());
  }
  // One closure per request, one wakeup for the whole batch, routed to the
  // key's locality domain (remote: the ingress is not a pool worker).
  auto make_job = [this](ExecItem item) {
    return [this, item] { execute_item(item); };
  };
  std::vector<decltype(make_job(ExecItem{}))> jobs;
  jobs.reserve(seal_scratch_.size());
  for (const ExecItem& it : seal_scratch_) jobs.push_back(make_job(it));
  pool_->submit_bulk(std::span(jobs), sched::SubmitHint::remote, shard);
}

void Server::execute_item(const ExecItem& item) {
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kServeExecBegin, item.leader_id, item.shard);
  }
  const double exec_begin_s = clock_.elapsed_s();
  BackendResult result;
  if (item.injected_fail) {
    // Blackout / error-window verdict: the replica refuses the request.
    // Fail fast — no backend work, like a connection refused.
    result = BackendResult{0, BackendError::injected};
  } else {
    // A slowdown window models a saturated upstream serving slowly rather
    // than erroring: the worker re-executes the work slow_factor times.
    for (std::uint32_t rep = 0; rep < item.slow_factor; ++rep) {
      result = backend_.execute(item.kind, item.key);
    }
  }
  const double exec_s = clock_.elapsed_s() - exec_begin_s;
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kServeExecEnd, item.leader_id);
  }
  const bool ok = result.ok();
  // Publish the result BEFORE retiring the in-flight node: an ingress that
  // finds neither the cache entry nor the node would re-execute, so the
  // window where both are absent must not exist. Failures are published
  // only when negative caching is on (and expire fast); successes carry
  // the configured TTL (0 = never expires).
  if (ok) {
    cache_.put(item.ckey, result,
               cfg_.cache_ttl_s > 0.0 ? item.arrival_s + cfg_.cache_ttl_s
                                      : 0.0);
  } else if (cfg_.negative_ttl_s > 0.0) {
    cache_.put(item.ckey, result, item.arrival_s + cfg_.negative_ttl_s);
  }
  std::vector<Waiter> waiters;
  {
    CoalesceStripe& st = coalesce_stripe(item.ckey);
    std::scoped_lock lock(st.mutex);
    auto it = st.nodes.find(item.ckey);
    PARC_CHECK(it != st.nodes.end());
    waiters = std::move(it->second.waiters);
    st.nodes.erase(it);
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  // Feed the measured service time back into the replica's EWMA score. An
  // organic failure (ok == false without an injected verdict, e.g. a net
  // pool timeout) also advances the replica's failure streak here.
  router_.on_complete(item.leader_id, item.replica, ok, item.injected_fail,
                      exec_s, item.arrival_s);
  complete_one(item.leader_id, item.arrival_s, item.priority, ok);
  for (const Waiter& w : waiters) {
    complete_one(w.id, w.arrival_s, w.priority, ok);
  }
}

void Server::complete_one(std::uint64_t id, double arrival_s,
                          Priority priority, bool ok) {
  const double latency_s = std::max(0.0, clock_.elapsed_s() - arrival_s);
  if (ok) {
    LatencySlot& slot = latency_[id & (kLatSlots - 1)];
    std::scoped_lock lock(slot.mutex);
    slot.hist[static_cast<std::size_t>(priority)].add(latency_s);
  }
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kServeDone, id,
              static_cast<std::uint64_t>(latency_s * 1e9));
  }
  ctr_completed_.fetch_add(1, std::memory_order_relaxed);
  if (ok) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  in_flight_.fetch_sub(1, std::memory_order_release);
}

void Server::flush() {
  for (std::size_t s = 0; s < ingress_.size(); ++s) seal_batch(s);
}

std::vector<flow::ChannelStats> Server::ingress_stats() const {
  std::vector<flow::ChannelStats> out;
  out.reserve(ingress_.size());
  for (const auto& chan : ingress_) out.push_back(chan->stats());
  return out;
}

void Server::drain() {
  flush();
  pool_->help_while(
      [this] { return in_flight_.load(std::memory_order_acquire) > 0; });
}

Server::Stats Server::stats() const {
  Stats out;
  const auto& a = admission_.stats();
  out.offered = a.offered;
  out.admitted = a.admitted;
  out.shed_rate = a.shed_rate;
  out.shed_queue = a.shed_queue;
  out.shed_deadline = a.shed_deadline;
  out.offered_by = a.offered_by;
  out.admitted_by = a.admitted_by;
  out.shed_by = a.shed_by;
  out.hits_inline = hits_inline_.load(std::memory_order_relaxed);
  out.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.executed = executed_.load(std::memory_order_relaxed);
  out.batches = batches_sealed_;
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.in_flight = in_flight_.load(std::memory_order_acquire);
  out.cache = cache_.stats();
  out.net_timeouts = backend_.net_timeouts();
  out.router = router_.stats();
  return out;
}

LogHistogram Server::latency_histogram() const {
  LogHistogram merged(1e-7, 1e2);
  for (const LatencySlot& slot : latency_) {
    std::scoped_lock lock(slot.mutex);
    for (const LogHistogram& h : slot.hist) merged.merge(h);
  }
  return merged;
}

LogHistogram Server::latency_histogram(Priority p) const {
  LogHistogram merged(1e-7, 1e2);
  const auto idx = static_cast<std::size_t>(p);
  for (const LatencySlot& slot : latency_) {
    std::scoped_lock lock(slot.mutex);
    merged.merge(slot.hist[idx]);
  }
  return merged;
}

}  // namespace parc::serve
