// Replicated-backend routing with health-based ejection.
//
// N replicas serve each request kind. The router picks one per request by
// weighted power-of-two-choices: draw two candidates by configured weight,
// keep the one with the lower EWMA score (latency × (1 + penalty · error
// rate)). Health is a per-replica state machine (diagram in DESIGN §3):
//
//             ┌────────────────────────────────────────────┐
//             │        fail_threshold consecutive          │
//             ▼               failures                     │
//   ┌─────────────┐                               ┌────────┴──────┐
//   │   ejected   │◀── probe failed (backoff ×2, ─┤    healthy    │
//   └──────┬──────┘    capped) ──────────┐        └───────────────┘
//          │ sched_s ≥ eject + backoff   │                ▲
//          ▼                             │                │
//   ┌─────────────┐──────────────────────┘                │
//   │  half_open  │───────── probe ok ────────────────────┘
//   └─────────────┘   (streak + backoff reset)
//
// Every transition is keyed on *scheduled* arrival time and the FaultPlan's
// seeded verdicts, settled at route() time on the single ingress thread —
// so under injected faults the entire eject/probe/recover sequence is a
// pure function of the request stream, independent of worker timing. The
// completion path only feeds the EWMA score (and organic failures, e.g.
// net-pool timeouts, which additionally advance the failure streak).
//
// When every replica is ejected the router still routes (to the replica
// whose probe is due soonest, counted as a forced route): an admitted
// request always executes somewhere, which keeps the conservation identity
// `offered == completed + shed + failed` exact under total blackout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "serve/fault.hpp"
#include "support/rng.hpp"

namespace parc::serve {

enum class ReplicaState : std::uint8_t { healthy = 0, ejected = 1,
                                         half_open = 2 };

[[nodiscard]] const char* to_string(ReplicaState s) noexcept;

struct HealthConfig {
  /// Consecutive failures (injected verdicts + organic errors) before a
  /// healthy replica is ejected.
  std::uint32_t fail_threshold = 5;
  /// First half-open probe is scheduled this long after ejection; each
  /// failed probe doubles the delay up to probe_backoff_max_s.
  double probe_backoff_s = 0.05;
  double probe_backoff_max_s = 1.0;
};

/// Per-replica health state machine. Single-threaded by contract (the
/// router serialises access); pure — transitions depend only on the
/// (ok, sched_s) event sequence, never on the wall clock.
class ReplicaHealth {
 public:
  explicit ReplicaHealth(HealthConfig cfg = {});

  /// State at scheduled time `sched_s`. The only time-driven transition is
  /// ejected → half_open when the probe backoff expires.
  [[nodiscard]] ReplicaState state(double sched_s) const noexcept;

  /// What one on_result() call did.
  struct Transition {
    ReplicaState from = ReplicaState::healthy;
    ReplicaState to = ReplicaState::healthy;
    bool ejected = false;       ///< healthy → ejected this call
    bool probe = false;         ///< this result settled a half-open probe
    bool probe_failed = false;  ///< ... and the probe failed (backoff ×2)
    bool recovered = false;     ///< → healthy from ejected/half_open
  };

  /// Record one outcome at scheduled time `sched_s` (clamped to be
  /// non-decreasing: completion-side organic reports may carry older
  /// arrival stamps than the ingress has already advanced past).
  Transition on_result(bool ok, double sched_s) noexcept;

  [[nodiscard]] std::uint32_t consecutive_failures() const noexcept {
    return fails_;
  }
  /// Scheduled time of the next half-open probe; +inf while healthy.
  [[nodiscard]] double next_probe_s() const noexcept { return next_probe_s_; }
  [[nodiscard]] double backoff_s() const noexcept { return backoff_; }
  [[nodiscard]] std::uint64_t ejections() const noexcept { return ejections_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint64_t probe_failures() const noexcept {
    return probe_failures_;
  }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }

 private:
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  HealthConfig cfg_;
  ReplicaState base_ = ReplicaState::healthy;  ///< healthy or ejected
  std::uint32_t fails_ = 0;
  double backoff_ = 0.0;
  double next_probe_s_ = kNever;
  double last_s_ = 0.0;
  std::uint64_t ejections_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t probe_failures_ = 0;
  std::uint64_t recoveries_ = 0;
};

struct RouterConfig {
  std::size_t replicas = 1;
  /// Routing weights, one per replica; empty = equal. P2C candidates are
  /// drawn proportionally to weight from the currently-available set.
  std::vector<double> weights;
  HealthConfig health{};
  /// EWMA smoothing for the latency/error score fed by completions.
  /// 0 freezes the scores at their priors, which makes the whole routing
  /// sequence (not just health) a pure function of the seeded stream —
  /// the mode serve_fault_test's sequential-oracle cross-check uses.
  double ewma_alpha = 0.2;
  /// Score = ewma_latency × (1 + error_penalty × ewma_error_rate).
  double error_penalty = 4.0;
  double initial_latency_s = 1e-3;  ///< EWMA prior
  std::uint64_t seed = 1;
};

class Router {
 public:
  explicit Router(RouterConfig cfg);

  /// Install/replace the fault plan (before traffic; not thread-safe
  /// against a concurrent route()).
  void set_fault_plan(FaultPlan plan) { plan_ = std::move(plan); }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  struct Route {
    std::size_t replica = 0;
    FaultDecision verdict{};  ///< the plan's settled verdict for this pick
    bool probe = false;       ///< half-open trial request
    bool forced = false;      ///< every replica ejected; best-effort pick
  };

  /// Pick a replica for request `request_id` at scheduled time `sched_s`
  /// and settle the planned verdict + health transition. Called from the
  /// ingress in stream order; `sched_s` non-decreasing.
  [[nodiscard]] Route route(std::uint64_t request_id, double sched_s);

  /// Completion-side report from a worker: measured latency feeds the EWMA
  /// score; an organic (non-injected) failure also advances the replica's
  /// failure streak. Thread-safe.
  void on_complete(std::uint64_t request_id, std::size_t replica, bool ok,
                   bool injected, double latency_s, double sched_s);

  struct ReplicaSnapshot {
    ReplicaState state = ReplicaState::healthy;
    std::uint32_t consecutive_failures = 0;
    double ewma_latency_s = 0.0;
    double ewma_error = 0.0;
    double score = 0.0;
    double next_probe_s = 0.0;
    double backoff_s = 0.0;
    std::uint64_t routed = 0;
    std::uint64_t failed = 0;  ///< injected + organic on this replica
    std::uint64_t ejections = 0;
    std::uint64_t probes = 0;
    std::uint64_t probe_failures = 0;
    std::uint64_t recoveries = 0;
  };
  /// Per-replica view at scheduled time `sched_s`. Thread-safe.
  [[nodiscard]] std::vector<ReplicaSnapshot> snapshot(double sched_s) const;

  struct Stats {
    std::uint64_t routed = 0;
    std::uint64_t failed_injected = 0;
    std::uint64_t failed_organic = 0;
    std::uint64_t ejections = 0;
    std::uint64_t probes = 0;
    std::uint64_t probe_failures = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t forced_routes = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const RouterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return cfg_.replicas;
  }

 private:
  struct ReplicaSlot {
    ReplicaHealth health;
    double weight = 1.0;
    double ewma_latency_s = 0.0;
    double ewma_error = 0.0;
    std::uint64_t routed = 0;
    std::uint64_t failed = 0;
    explicit ReplicaSlot(const HealthConfig& h) : health(h) {}
  };

  [[nodiscard]] double score(const ReplicaSlot& r) const noexcept {
    return r.ewma_latency_s * (1.0 + cfg_.error_penalty * r.ewma_error);
  }
  /// Weighted draw from `avail` (indices into slots_). Consumes one rng
  /// value.
  [[nodiscard]] std::size_t draw(const std::vector<std::size_t>& avail);
  void apply_transition(std::size_t replica,
                        const ReplicaHealth::Transition& tr);

  RouterConfig cfg_;
  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<ReplicaSlot> slots_;
  Rng rng_;
  std::uint64_t failed_injected_ = 0;
  std::uint64_t failed_organic_ = 0;
  std::uint64_t forced_routes_ = 0;
  // scratch for route(); router is single-ingress so reuse is safe
  std::vector<std::size_t> avail_;
};

}  // namespace parc::serve
